// Command bdcoord is the shard coordinator: it serves the same /v1/jobs
// API as bdservd, but instead of executing jobs in-process it tiles each
// job's characterization grid (on the workload×node axes) into many
// small work units and feeds them through a work-stealing dispatch loop
// over a set of bdservd workers: each worker pulls its next unit the
// moment the previous one completes, so fast workers naturally drain the
// tail slow ones would stall on; units from failed or stalled workers
// are re-queued. Per-worker circuit breakers — fed by unit outcomes and
// a background /healthz prober (-probe-interval, -breaker-threshold) —
// keep dead workers out of rotation between jobs, and half-open probes
// re-admit them when they recover; /v1/workers exposes the live state.
// Per-unit NDJSON progress is multiplexed into one merged event stream
// and the unit observation matrices are deterministically re-assembled
// before the statistical pipeline runs once, coordinator-side. The
// merged result is byte-identical (same content hash) to a single-daemon
// run of the same spec at any worker count.
//
// Usage:
//
//	bdcoord -workers http://h1:8356,http://h2:8356 [-addr :8360]
//	        [-data-dir bdcoord-data] [-queue 64] [-cache-entries 256]
//	        [-max-jobs 1024] [-parallelism 0] [-concurrent-jobs 1]
//	        [-stall-timeout 5m] [-probe-interval 15s]
//	        [-breaker-threshold 3] [-units-per-worker 4]
//
// The coordinator keeps its own content-addressed result cache and
// persistent job journal (under -data-dir), so repeated grids are served
// without touching the workers and job metadata survives restarts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8360", "listen address")
		workers = flag.String("workers", "", "comma-separated bdservd worker base URLs (required)")
		dataDir = flag.String("data-dir", "bdcoord-data", "on-disk result store + journal ('' = memory only)")
		queue   = flag.Int("queue", 64, "max queued jobs")
		entries = flag.Int("cache-entries", 256, "in-memory LRU result entries")
		maxJobs = flag.Int("max-jobs", 1024, "max retained job records (oldest terminal evicted)")
		par     = flag.Int("parallelism", 0, "coordinator-side analysis parallelism (0 = GOMAXPROCS)")
		conc    = flag.Int("concurrent-jobs", 1, "concurrently coordinated jobs")
		stall   = flag.Duration("stall-timeout", 5*time.Minute, "per-unit worker inactivity bound before re-queue")
		probe   = flag.Duration("probe-interval", 15*time.Second, "worker /healthz probe period (negative disables; open breakers then re-admit via half-open dispatch trials)")
		brk     = flag.Int("breaker-threshold", 3, "consecutive failures (units + probes) that open a worker's circuit breaker")
		upw     = flag.Int("units-per-worker", 4, "target work units planned per worker (work-stealing granularity)")
	)
	flag.Parse()
	if *queue < 1 || *entries < 1 || *maxJobs < 1 || *conc < 1 || *par < 0 {
		return fmt.Errorf("-queue, -cache-entries, -max-jobs and -concurrent-jobs must be ≥1 and -parallelism ≥0")
	}
	if *brk < 1 || *upw < 1 {
		return fmt.Errorf("-breaker-threshold and -units-per-worker must be ≥1")
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-workers is required (comma-separated bdservd URLs)")
	}

	// Surface obviously dead workers at startup — advisory only: workers
	// may come and go, and per-shard failover handles them at job time.
	for _, u := range urls {
		ctx, stop := context.WithTimeout(context.Background(), 2*time.Second)
		if err := client.New(u).Health(ctx); err != nil {
			log.Printf("bdcoord: warning: %v", err)
		}
		stop()
	}

	exec, err := shard.New(shard.Config{
		Workers:          urls,
		Parallelism:      *par,
		StallTimeout:     *stall,
		ProbeInterval:    *probe,
		BreakerThreshold: *brk,
		UnitsPerWorker:   *upw,
	})
	if err != nil {
		return err
	}
	defer exec.Close()
	journal := ""
	if *dataDir != "" {
		journal = filepath.Join(*dataDir, "journal.ndjson")
	}
	mgr, err := service.New(service.Config{
		DataDir:      *dataDir,
		Workers:      *conc,
		QueueDepth:   *queue,
		CacheEntries: *entries,
		MaxJobs:      *maxJobs,
		JournalPath:  journal,
		Execute:      exec.Execute,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	// The coordinator's API is the stock jobs API plus /v1/workers: the
	// live breaker/health state of the fleet.
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(exec.WorkerStatuses())
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("bdcoord: listening on %s, sharding across %d worker(s): %s",
		*addr, len(urls), strings.Join(urls, ", "))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("bdcoord: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
