// Command bdcoord is the shard coordinator: it serves the same /v1/jobs
// API as bdservd, but instead of executing jobs in-process it statically
// partitions each job's characterization grid (on the workload×node
// axes) into per-worker sub-specs, fans them out over HTTP to a set of
// bdservd workers, multiplexes the per-shard NDJSON progress into one
// merged event stream, retries failed shards on healthy workers, and
// deterministically re-assembles the shard observation matrices before
// running the statistical pipeline once, coordinator-side. The merged
// result is byte-identical (same content hash) to a single-daemon run of
// the same spec at any worker count.
//
// Usage:
//
//	bdcoord -workers http://h1:8356,http://h2:8356 [-addr :8360]
//	        [-data-dir bdcoord-data] [-queue 64] [-cache-entries 256]
//	        [-max-jobs 1024] [-parallelism 0] [-concurrent-jobs 1]
//	        [-stall-timeout 5m]
//
// The coordinator keeps its own content-addressed result cache and
// persistent job journal (under -data-dir), so repeated grids are served
// without touching the workers and job metadata survives restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8360", "listen address")
		workers = flag.String("workers", "", "comma-separated bdservd worker base URLs (required)")
		dataDir = flag.String("data-dir", "bdcoord-data", "on-disk result store + journal ('' = memory only)")
		queue   = flag.Int("queue", 64, "max queued jobs")
		entries = flag.Int("cache-entries", 256, "in-memory LRU result entries")
		maxJobs = flag.Int("max-jobs", 1024, "max retained job records (oldest terminal evicted)")
		par     = flag.Int("parallelism", 0, "coordinator-side analysis parallelism (0 = GOMAXPROCS)")
		conc    = flag.Int("concurrent-jobs", 1, "concurrently coordinated jobs")
		stall   = flag.Duration("stall-timeout", 5*time.Minute, "per-shard worker inactivity bound before failover")
	)
	flag.Parse()
	if *queue < 1 || *entries < 1 || *maxJobs < 1 || *conc < 1 || *par < 0 {
		return fmt.Errorf("-queue, -cache-entries, -max-jobs and -concurrent-jobs must be ≥1 and -parallelism ≥0")
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-workers is required (comma-separated bdservd URLs)")
	}

	// Surface obviously dead workers at startup — advisory only: workers
	// may come and go, and per-shard failover handles them at job time.
	for _, u := range urls {
		ctx, stop := context.WithTimeout(context.Background(), 2*time.Second)
		if err := client.New(u).Health(ctx); err != nil {
			log.Printf("bdcoord: warning: %v", err)
		}
		stop()
	}

	exec, err := shard.New(shard.Config{Workers: urls, Parallelism: *par, StallTimeout: *stall})
	if err != nil {
		return err
	}
	journal := ""
	if *dataDir != "" {
		journal = filepath.Join(*dataDir, "journal.ndjson")
	}
	mgr, err := service.New(service.Config{
		DataDir:      *dataDir,
		Workers:      *conc,
		QueueDepth:   *queue,
		CacheEntries: *entries,
		MaxJobs:      *maxJobs,
		JournalPath:  journal,
		Execute:      exec.Execute,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("bdcoord: listening on %s, sharding across %d worker(s): %s",
		*addr, len(urls), strings.Join(urls, ", "))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("bdcoord: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
