// Command bdcoord is the shard coordinator: it serves the same /v1/jobs
// API as bdservd, but instead of executing jobs in-process it tiles each
// job's characterization grid (on the workload×node axes) into many
// small work units and feeds them through a work-stealing dispatch loop
// over a set of bdservd workers: each worker pulls its next unit the
// moment the previous one completes, so fast workers naturally drain the
// tail slow ones would stall on; units from failed or stalled workers
// are re-queued. Per-worker circuit breakers — fed by unit outcomes and
// a background /healthz prober (-probe-interval, -breaker-threshold) —
// keep dead workers out of rotation between jobs, and half-open probes
// re-admit them when they recover; /v1/workers exposes the live state.
// Per-unit NDJSON progress is multiplexed into one merged event stream
// and the unit observation matrices are deterministically re-assembled
// before the statistical pipeline runs once, coordinator-side. The
// merged result is byte-identical (same content hash) to a single-daemon
// run of the same spec at any worker count.
//
// Fleet membership is elastic: -workers seeds permanent members, and
// further workers join/leave at runtime through POST/DELETE /v1/workers
// under heartbeat leases (bdservd -register automates this). Running
// jobs pick up joins and leaves mid-flight.
//
// Usage:
//
//	bdcoord [-workers http://h1:8356,http://h2:8356] [-addr :8360]
//	        [-data-dir bdcoord-data] [-queue 64] [-cache-entries 256]
//	        [-max-jobs 1024] [-parallelism 0] [-concurrent-jobs 1]
//	        [-stall-timeout 5m] [-probe-interval 15s]
//	        [-breaker-threshold 3] [-units-per-worker 4]
//	        [-cell-cache auto] [-cell-cache-entries 0]
//	        [-cell-cache-max-age 0] [-drain-timeout 30s]
//	        [-log-level info] [-log-format text] [-stats-interval 1m]
//	        [-status-tick 5s] [-status-window 10m]
//	        [-status-worker-timeout 2s]
//	        [-trace-buffer 2048] [-pprof-addr localhost:6061]
//
// GET /metrics serves the Prometheus text exposition covering both the
// job-manager layer (queue, cache, journal, per-stage timing) and the
// shard layer (per-worker units, breakers, probes, leases) from one
// shared registry; see DESIGN.md §9. GET /v1/status serves the merged
// operational snapshot — coordinator state, cell cache, time-series
// window, and a fleet view with every worker's self-reported status —
// rendered live by cmd/bdtop; see DESIGN.md §12.
//
// The coordinator keeps its own content-addressed result cache, a
// persistent job journal with per-unit progress records, and a unit
// store (all under -data-dir): repeated grids are served without
// touching the workers, job metadata survives restarts, and a
// coordinator killed mid-job re-adopts the job on restart and
// re-dispatches only the units not journaled as done.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8360", "listen address")
		workers = flag.String("workers", "", "comma-separated bdservd worker base URLs seeding the fleet (optional: workers may instead join at runtime via POST /v1/workers)")
		dataDir = flag.String("data-dir", "bdcoord-data", "on-disk result store + journal + unit store ('' = memory only, no crash recovery)")
		queue   = flag.Int("queue", 64, "max queued jobs")
		entries = flag.Int("cache-entries", 256, "in-memory LRU result entries")
		maxJobs = flag.Int("max-jobs", 1024, "max retained job records (oldest terminal evicted)")
		par     = flag.Int("parallelism", 0, "coordinator-side analysis parallelism (0 = GOMAXPROCS)")
		conc    = flag.Int("concurrent-jobs", 1, "concurrently coordinated jobs")
		stall   = flag.Duration("stall-timeout", 5*time.Minute, "per-unit worker inactivity bound before re-queue")
		probe   = flag.Duration("probe-interval", 15*time.Second, "worker /healthz probe period (negative disables; open breakers then re-admit via half-open dispatch trials)")
		brk     = flag.Int("breaker-threshold", 3, "consecutive failures (units + probes) that open a worker's circuit breaker")
		upw     = flag.Int("units-per-worker", 4, "target work units planned per worker (work-stealing granularity)")
		cellDir = flag.String("cell-cache", "auto",
			"shared cell-level result cache dir ('auto' = <data-dir>/cells, '' = disabled): fully cached units are assembled coordinator-side and never dispatched")
		cellEntries = flag.Int("cell-cache-entries", 0,
			"max on-disk cell cache entries (0 = default)")
		cellMaxAge = flag.Duration("cell-cache-max-age", 0,
			"evict cell-cache entries older than this (mtime sweep; 0 = no age bound)")
		drain = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT: how long to let in-flight jobs finish before cutting them short (they re-adopt on restart)")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text, json")
		statsIvl  = flag.Duration("stats-interval", time.Minute,
			"period of the one-line INFO fleet summary (0 disables)")
		traceBuf = flag.Int("trace-buffer", 2048,
			"per-job flight-recorder span capacity (0 disables tracing)")
		statusTick = flag.Duration("status-tick", 5*time.Second,
			"sampling tick of the /v1/status time-series window")
		statusWindow = flag.Duration("status-window", 10*time.Minute,
			"trailing extent of the /v1/status time-series window")
		statusTimeout = flag.Duration("status-worker-timeout", 2*time.Second,
			"per-worker timeout of the /v1/status fleet fan-out")
		pprofAddr = flag.String("pprof-addr", "",
			"listen address for net/http/pprof (e.g. localhost:6061; empty = disabled; bind to localhost unless you mean to expose profiles)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	if *queue < 1 || *entries < 1 || *maxJobs < 1 || *conc < 1 || *par < 0 {
		return fmt.Errorf("-queue, -cache-entries, -max-jobs and -concurrent-jobs must be ≥1 and -parallelism ≥0")
	}
	if *brk < 1 || *upw < 1 {
		return fmt.Errorf("-breaker-threshold and -units-per-worker must be ≥1")
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		logger.Info("no -workers seed; waiting for runtime registrations (bdservd -register)")
	}

	// Surface obviously dead workers at startup — advisory only: workers
	// may come and go, and per-shard failover handles them at job time.
	for _, u := range urls {
		ctx, stop := context.WithTimeout(context.Background(), 2*time.Second)
		if err := client.New(u).Health(ctx); err != nil {
			logger.Warn("seeded worker not healthy at startup", "worker", u, "error", err)
		}
		stop()
	}

	journal, unitDir := "", ""
	if *dataDir != "" {
		journal = filepath.Join(*dataDir, "journal.ndjson")
		unitDir = filepath.Join(*dataDir, "units")
	}
	cellCacheDir := *cellDir
	if cellCacheDir == "auto" {
		cellCacheDir = ""
		if *dataDir != "" {
			cellCacheDir = filepath.Join(*dataDir, "cells")
		}
	}
	// One registry spans both layers: the manager's queue/cache/journal
	// metrics and the executor's fleet metrics render on the same
	// /metrics endpoint.
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	sampler := obs.NewSampler(reg, *statusTick, *statusWindow,
		append(service.StatusSeriesDefs(), shard.FleetSeriesDefs()...))
	exec, err := shard.New(shard.Config{
		Workers:          urls,
		Parallelism:      *par,
		StallTimeout:     *stall,
		ProbeInterval:    *probe,
		BreakerThreshold: *brk,
		UnitsPerWorker:   *upw,
		UnitCacheDir:     unitDir,
		CellCacheDir:     cellCacheDir,
		CellCacheEntries: *cellEntries,
		CellCacheMaxAge:  *cellMaxAge,
		Registry:         reg,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer exec.Close()
	// Flag semantics (0 = off) map to the config's (negative = off).
	traceSpans := *traceBuf
	if traceSpans == 0 {
		traceSpans = -1
	}
	mgr, err := service.New(service.Config{
		DataDir:      *dataDir,
		Workers:      *conc,
		QueueDepth:   *queue,
		CacheEntries: *entries,
		MaxJobs:      *maxJobs,
		JournalPath:  journal,
		Execute:      exec.Execute,
		TraceBuffer:  traceSpans,
		TraceService: "bdcoord",
		Registry:     reg,
		Sampler:      sampler,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()
	stopSampler := sampler.Start()
	defer stopSampler()

	if *pprofAddr != "" {
		stopPprof, err := obs.StartPprof(*pprofAddr, logger)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	// The coordinator's API is the stock jobs API plus /v1/workers: GET
	// lists the fleet's live breaker/health/lease state, POST registers
	// (or heartbeat-renews) a worker, DELETE releases its lease.
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	// /v1/status here overrides the inner handler's route (the more
	// specific pattern wins): the coordinator serves the same manager
	// snapshot with two additions — its cell cache lives in the shard
	// executor, not the manager (Execute is overridden), and the fleet
	// view appends every registered worker's coordinator-side record plus
	// the worker's own self-reported snapshot (bounded concurrency,
	// per-worker timeout, failures isolated per row).
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		snap := mgr.Status()
		if cs, ok := exec.CellCacheStats(); ok {
			snap.CellCache = &cs
		}
		fleet := exec.FleetStatus(r.Context(), *statusTimeout)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			service.StatusSnapshot
			Fleet []shard.WorkerFleetStatus `json:"fleet"`
		}{snap, fleet})
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(exec.WorkerStatuses())
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var reg client.WorkerRegistration
		if err := dec.Decode(&reg); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err))
			return
		}
		st, err := exec.Register(reg.URL, time.Duration(reg.TTLSeconds*float64(time.Second)))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("DELETE /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		u := r.URL.Query().Get("url")
		if u == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing url query parameter"))
			return
		}
		if !exec.Deregister(u) {
			httpError(w, http.StatusNotFound, fmt.Errorf("worker %q is not a fleet member", u))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "deregistered", "url": u})
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           obs.LogRequests(mux, logger, reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("bdcoord listening", "addr", *addr, "seeded_workers", len(urls), "workers", strings.Join(urls, ", "))

	stopStats := obs.StartStatsTicker(logger, *statsIvl, func() []slog.Attr {
		st := mgr.Stats()
		ws := exec.WorkerStatuses()
		unitsDone, open := 0, 0
		for _, w := range ws {
			unitsDone += w.UnitsDone
			if w.Breaker != shard.BreakerClosed {
				open++
			}
		}
		attrs := []slog.Attr{
			slog.Int("queued", st.Queued), slog.Int("running", st.Running),
			slog.Int("done", st.Done), slog.Int("failed", st.Failed),
			slog.Int("queue_depth", st.QueueDepth),
			slog.Uint64("cache_hits", st.Cache.Hits), slog.Uint64("cache_misses", st.Cache.Misses),
			slog.Int("fleet_workers", len(ws)), slog.Int("breakers_not_closed", open),
			slog.Int("fleet_units_done", unitsDone),
		}
		if h, ok := reg.ReadHistogram("bd_worker_unit_duration_seconds"); ok && h.Count > 0 {
			q := h.Quantiles(0.50, 0.95, 0.99)
			attrs = append(attrs,
				slog.Float64("unit_p50_s", q[0]),
				slog.Float64("unit_p95_s", q[1]),
				slog.Float64("unit_p99_s", q[2]))
		}
		return attrs
	})
	defer stopStats()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting connections, let in-flight jobs
	// drain within -drain-timeout, then Close — which cuts any stragglers
	// short WITHOUT journaling a terminal record, so the next incarnation
	// re-adopts them and (thanks to the unit store) re-dispatches only the
	// units not yet journaled done.
	logger.Info("bdcoord shutting down", "drain_timeout", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if !mgr.Drain(*drain) {
		logger.Warn("drain timeout: cutting in-flight jobs short (they will be re-adopted on restart)")
	}
	return nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
