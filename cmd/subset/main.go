// Command subset runs the paper's statistical pipeline — z-score
// normalization, PCA with Kaiser's criterion, single-linkage hierarchical
// clustering, BIC-driven K-means, and representative selection — on a
// metric matrix produced by bdbench (or any CSV of the same shape), and
// prints the subsetting result (§VI).
//
// Usage:
//
//	subset -in metrics.csv [-kmin 2] [-kmax 12] [-linkage single]
//	       [-pc kaiser|variance] [-variance 0.9] [-policy farthest|nearest]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster/hier"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "subset:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input CSV (required; produce with bdbench)")
		kmin     = flag.Int("kmin", 2, "minimum K for the BIC scan")
		kmax     = flag.Int("kmax", 12, "maximum K for the BIC scan")
		linkage  = flag.String("linkage", "single", "hierarchical linkage: single|complete|average|ward")
		pcsel    = flag.String("pc", "kaiser", "PC selection: kaiser|variance")
		variance = flag.Float64("variance", 0.9, "variance fraction for -pc variance")
		policy   = flag.String("policy", "farthest", "representative policy: farthest|nearest")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := core.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}

	acfg := core.DefaultAnalysis()
	acfg.KMin, acfg.KMax = *kmin, *kmax
	acfg.VarianceFrac = *variance
	switch *pcsel {
	case "kaiser":
		acfg.PCSelection = core.Kaiser
	case "variance":
		acfg.PCSelection = core.VarianceThreshold
	default:
		return fmt.Errorf("unknown -pc %q", *pcsel)
	}
	switch *linkage {
	case "single":
		acfg.Linkage = hier.Single
	case "complete":
		acfg.Linkage = hier.Complete
	case "average":
		acfg.Linkage = hier.Average
	case "ward":
		acfg.Linkage = hier.Ward
	default:
		return fmt.Errorf("unknown -linkage %q", *linkage)
	}

	an, err := core.Analyze(ds, acfg)
	if err != nil {
		return err
	}

	fmt.Printf("%d workloads × %d metrics; %d PCs retained (%.2f%% variance)\n\n",
		len(ds.Labels), len(ds.Metrics), an.NumPCs, an.Variance*100)
	fmt.Println(report.Table4(an))
	fmt.Println(report.Table5(an))

	reps := an.FarthestReps
	if *policy == "nearest" {
		reps = an.NearestReps
	} else if *policy != "farthest" {
		return fmt.Errorf("unknown -policy %q", *policy)
	}
	fmt.Printf("Selected subset (%s policy):\n", *policy)
	for _, r := range reps {
		fmt.Printf("  %s (represents %d workloads)\n", r.Workload, r.ClusterSize)
	}
	return nil
}
