package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cellcache"
	"repro/internal/service"
	"repro/internal/shard"
)

// fleetStatus is the wire shape of a daemon's GET /v1/status: the base
// snapshot every daemon serves, plus the fleet view bdcoord appends.
// Against a plain bdservd the fleet array is simply absent.
type fleetStatus struct {
	service.StatusSnapshot
	Fleet []shard.WorkerFleetStatus `json:"fleet"`
}

// sparkRunes maps normalized sample heights to terminal block glyphs.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders points (oldest first) as one block glyph each,
// scaled to the window's own min/max; a flat series draws low.
func sparkline(points []float64, width int) string {
	if len(points) > width && width > 0 {
		points = points[len(points)-width:]
	}
	if len(points) == 0 {
		return ""
	}
	lo, hi := points[0], points[0]
	for _, p := range points {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	var b strings.Builder
	for _, p := range points {
		i := 0
		if hi > lo {
			i = int((p - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtSeconds renders a latency quantile, "-" when it has no samples yet.
func fmtSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	return fmtDuration(time.Duration(s * float64(time.Second)))
}

func progressBar(done, total, width int) string {
	if total <= 0 || width <= 0 {
		return ""
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

// maxWorkloadRows bounds the per-workload cellcache table in a frame;
// rows are shown most-requested first.
const maxWorkloadRows = 12

// renderFrame draws one complete console frame from a status snapshot.
// Pure: same snapshot + now + width, same frame — the golden test pins
// it. Plain text with no cursor control; the caller owns the screen.
func renderFrame(st fleetStatus, now time.Time, width int) string {
	if width < 60 {
		width = 60
	}
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	line("bdtop — %s  pid %d  up %s  %s  goroutines %d",
		st.Service, st.PID, fmtDuration(time.Duration(st.UptimeSeconds*float64(time.Second))),
		st.GoVersion, st.Goroutines)
	journal := "journal ok"
	if !st.Journal.Enabled {
		journal = "journal off"
	} else if !st.Journal.Healthy {
		journal = "JOURNAL DEGRADED: " + st.Journal.Detail
	}
	line("JOBS   queued %d  running %d  done %d  failed %d  canceled %d   queue %d/%d  busy %d/%d  %s",
		st.Jobs.Queued, st.Jobs.Running, st.Jobs.Done, st.Jobs.Failed, st.Jobs.Canceled,
		st.Queue.Depth, st.Queue.Capacity, st.Queue.Busy, st.Queue.Workers, journal)

	if st.Window != nil && len(st.Window.Series) > 0 {
		line("")
		sw := width - 28
		for _, s := range st.Window.Series {
			if len(s.Points) == 0 {
				continue
			}
			line("  %-22s %s  now %.2f", s.Name, sparkline(s.Points, sw), s.Last())
		}
	}

	if st.Fleet != nil {
		unitsDone, open := 0, 0
		for _, w := range st.Fleet {
			unitsDone += w.UnitsDone
			if w.Breaker != shard.BreakerClosed {
				open++
			}
		}
		line("")
		line("FLEET  %d workers  units done %d  open breakers %d", len(st.Fleet), unitsDone, open)
		line("  %-28s %-9s %6s %5s %6s %8s %9s  %s",
			"WORKER", "BREAKER", "UNITS", "FAIL", "U/S", "UNIT-P95", "CELLHIT%", "STATUS")
		for _, w := range st.Fleet {
			cellhit, detail := "-", "ok"
			if w.StatusError != "" {
				detail = "unreachable: " + w.StatusError
			} else if w.Status != nil {
				detail = fmt.Sprintf("%s jobs r%d/q%d", w.Status.Service,
					w.Status.Jobs.Running, w.Status.Jobs.Queued)
				if w.Status.CellCache != nil {
					cellhit = fmt.Sprintf("%.2f", w.Status.CellCache.HitRatio)
				}
			}
			line("  %-28s %-9s %6d %5d %6.2f %8s %9s  %s",
				w.URL, w.Breaker, w.UnitsDone, w.UnitsFailed, w.UnitsPerSecond,
				fmtSeconds(w.UnitDurationP95), cellhit, detail)
		}
	}

	if len(st.ActiveJobs) > 0 {
		line("")
		line("ACTIVE JOBS")
		for _, j := range st.ActiveJobs {
			age := now.Sub(j.CreatedAt)
			bar := progressBar(j.CellsDone, j.CellsTotal, 20)
			line("  %s  %-8s %-14s %s %d/%d cells  age %s",
				j.ID, j.State, j.Stage, bar, j.CellsDone, j.CellsTotal, fmtDuration(age))
		}
	}

	line("")
	rc := st.ResultCache
	line("CACHES")
	line("  result cache  entries %d  hits %d (mem %d, disk %d)  misses %d  ratio %.2f",
		rc.Entries, rc.Hits, rc.MemoryHits, rc.DiskHits, rc.Misses, rc.HitRatio)
	if cc := st.CellCache; cc != nil {
		line("  cell cache    entries %d  disk %s  hits %d  misses %d  evicted %d  ratio %.2f",
			cc.Entries, fmtBytes(cc.DiskBytes), cc.Hits, cc.Misses, cc.Evicted, cc.HitRatio)
		if len(cc.ByWorkload) > 0 {
			rows := append([]cellcache.WorkloadStats(nil), cc.ByWorkload...)
			sort.SliceStable(rows, func(i, j int) bool {
				return rows[i].Hits+rows[i].Misses > rows[j].Hits+rows[j].Misses
			})
			if len(rows) > maxWorkloadRows {
				rows = rows[:maxWorkloadRows]
			}
			line("    %-24s %6s %6s %6s", "WORKLOAD", "HITS", "MISS", "RATIO")
			for _, r := range rows {
				line("    %-24s %6d %6d %6.2f", r.Workload, r.Hits, r.Misses, r.HitRatio)
			}
		}
	}

	if len(st.Stages) > 0 {
		line("")
		line("STAGES")
		for _, sg := range st.Stages {
			line("  %-14s n=%-6d p50 %-8s p95 %-8s p99 %s",
				sg.Stage, sg.Count, fmtSeconds(sg.P50), fmtSeconds(sg.P95), fmtSeconds(sg.P99))
		}
	}
	return b.String()
}
