// Command bdtop is the fleet console: a polling terminal view of a
// bdcoord (or bdservd) daemon built entirely on GET /v1/status. Each
// frame renders the daemon's operational snapshot — jobs by state, queue
// and executor occupancy, the worker fleet with breaker state and
// per-worker self-reported status, active jobs with stage progress,
// cache tiers with per-workload cell-cache hit ratios, and sparklines
// over the daemon's in-process time-series window.
//
// Plain ANSI only (clear-screen + home between frames, no curses): the
// output is equally usable live in a terminal, piped to a file, or
// captured by scripts. -once prints a single frame and exits, which is
// how the smoke tests assert on a live fleet.
//
// Usage:
//
//	bdtop [-addr http://127.0.0.1:8360] [-interval 2s] [-once]
//	      [-width 100]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// clearScreen is the only ANSI this tool emits: erase display, cursor
// home — a poor man's full repaint, dependency-free.
const clearScreen = "\x1b[2J\x1b[H"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdtop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr = flag.String("addr", "http://127.0.0.1:8360",
			"daemon base URL (bdcoord for the fleet view; a bare bdservd works too)")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one frame and exit (for scripts)")
		width    = flag.Int("width", 100, "frame width in columns")
	)
	flag.Parse()
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	hc := &http.Client{Timeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	frame := func() error {
		st, err := fetchStatus(ctx, hc, *addr)
		if err != nil {
			return err
		}
		out := renderFrame(st, time.Now(), *width)
		if !*once {
			out = clearScreen + out
		}
		_, werr := os.Stdout.WriteString(out)
		return werr
	}

	if *once {
		return frame()
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		if err := frame(); err != nil {
			// A transient fetch error (daemon restarting, fleet churn) is
			// worth a line, not an exit: the console keeps polling.
			fmt.Fprintln(os.Stderr, "bdtop:", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// fetchStatus fetches and decodes one /v1/status snapshot. The fleet
// array is bdcoord-only; against bdservd it simply decodes absent.
func fetchStatus(ctx context.Context, hc *http.Client, base string) (fleetStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/status", nil)
	if err != nil {
		return fleetStatus{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fleetStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleetStatus{}, fmt.Errorf("GET %s/v1/status: %s", base, resp.Status)
	}
	var st fleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fleetStatus{}, fmt.Errorf("decoding status: %w", err)
	}
	return st, nil
}
