package main

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cellcache"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a deterministic fleet snapshot: one healthy worker with
// a self-reported status, one unreachable, an active job mid-stage, both
// cache tiers populated and a short time-series window.
func fixture() fleetStatus {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	started := t0.Add(-90 * time.Second)
	workerStatus := service.StatusSnapshot{
		Service:    "bdservd",
		PID:        7001,
		GoVersion:  "go1.24.4",
		Goroutines: 42,
		Jobs:       service.JobsByState{Running: 1, Done: 3},
		Queue:      service.QueueStatus{Depth: 0, Capacity: 64, Workers: 1, Busy: 1},
		CellCache: &cellcache.Stats{
			Entries: 40, Hits: 36, Misses: 12, HitRatio: 0.75,
		},
	}
	return fleetStatus{
		StatusSnapshot: service.StatusSnapshot{
			Service:       "bdcoord",
			PID:           4242,
			GoVersion:     "go1.24.4",
			Goroutines:    87,
			UptimeSeconds: 3725,
			Now:           t0,
			Queue:         service.QueueStatus{Depth: 1, Capacity: 64, Workers: 2, Busy: 1},
			Jobs:          service.JobsByState{Queued: 1, Running: 1, Done: 14},
			ActiveJobs: []service.ActiveJob{{
				ID: "0a1b2c3d4e5f60718293a4b5c6d7e8f9", State: service.StateRunning,
				Stage: "characterize", CellsDone: 1234, CellsTotal: 2000,
				CreatedAt: t0.Add(-5 * time.Minute), StartedAt: &started,
			}},
			ResultCache: service.CacheTierStatus{
				CacheStats: service.CacheStats{
					Entries: 4, Hits: 10, Misses: 4, MemoryHits: 8, DiskHits: 2,
				},
				HitRatio: 10.0 / 14.0,
			},
			CellCache: &cellcache.Stats{
				Entries: 88, DiskBytes: 1 << 20, MaxEntries: 4096,
				Hits: 40, Misses: 48, Stores: 50, Evicted: 2, HitRatio: 40.0 / 88.0,
				ByWorkload: []cellcache.WorkloadStats{
					{Workload: "bayes", Hits: 4, Misses: 20, HitRatio: 4.0 / 24.0},
					{Workload: "kmeans", Hits: 36, Misses: 28, HitRatio: 36.0 / 64.0},
				},
			},
			Journal: service.JournalStatus{Enabled: true, Healthy: true, Appends: 120},
			Stages: []service.StageLatency{
				{Stage: "characterize", Count: 15, P50: 8.2, P95: 14.0, P99: 19.5},
				{Stage: "analyze", Count: 14, P50: 0.4, P95: 0.9, P99: 1.2},
			},
			Window: &obs.Window{
				IntervalSeconds: 5, Capacity: 120, End: t0,
				Series: []obs.SeriesWindow{
					{Name: "queue_depth", Kind: "level", Points: []float64{0, 0, 1, 2, 3, 2, 1, 1}},
					{Name: "units_done_per_sec", Kind: "rate", Points: []float64{0, 0.4, 1.2, 3.1, 2.8, 2.2, 1.9, 2.4}},
					{Name: "cellcache_hit_ratio", Kind: "ratio", Points: []float64{0, 0, 0.2, 0.4, 0.45, 0.45, 0.46, 0.45}},
				},
			},
		},
		Fleet: []shard.WorkerFleetStatus{
			{
				WorkerStatus: shard.WorkerStatus{
					URL: "http://127.0.0.1:9001", Breaker: shard.BreakerClosed,
					UnitsDone: 12, UnitsPerSecond: 0.2, UnitDurationP95: 12.5,
				},
				Status: &workerStatus,
			},
			{
				WorkerStatus: shard.WorkerStatus{
					URL: "http://127.0.0.1:9002", Breaker: shard.BreakerOpen,
					UnitsDone: 3, UnitsFailed: 4,
				},
				StatusError: "Get \"http://127.0.0.1:9002/v1/status\": connection refused",
			},
		},
	}
}

func TestRenderFrameGolden(t *testing.T) {
	st := fixture()
	frame := renderFrame(st, st.Now, 100)
	golden := filepath.Join("testdata", "frame.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(frame), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if frame != string(want) {
		t.Errorf("frame drifted from golden (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", frame, want)
	}
}

// The frame must carry the tokens the smoke script greps for.
func TestRenderFrameSmokeTokens(t *testing.T) {
	st := fixture()
	frame := renderFrame(st, st.Now, 100)
	for _, tok := range []string{
		"FLEET  2 workers",
		"units done 15",
		"open breakers 1",
		"unreachable: ",
		"cell cache",
		"ratio 0.45",
		"kmeans",
		"bdservd jobs r1/q0",
	} {
		if !strings.Contains(frame, tok) {
			t.Errorf("frame missing token %q\n%s", tok, frame)
		}
	}
}

func TestRenderFrameDegradedAndEmpty(t *testing.T) {
	var st fleetStatus
	st.Service = "bdservd"
	st.Journal = service.JournalStatus{Enabled: true, Healthy: false, Detail: "append failed: disk full"}
	frame := renderFrame(st, time.Unix(0, 0), 0)
	if !strings.Contains(frame, "JOURNAL DEGRADED: append failed: disk full") {
		t.Errorf("degraded journal not surfaced:\n%s", frame)
	}
	// No fleet array (plain bdservd): no FLEET section, no panic.
	if strings.Contains(frame, "FLEET") {
		t.Errorf("fleet section rendered without fleet data:\n%s", frame)
	}
}

func TestFetchStatusRoundTrip(t *testing.T) {
	st := fixture()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(st)
	}))
	defer srv.Close()

	got, err := fetchStatus(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "bdcoord" || len(got.Fleet) != 2 {
		t.Fatalf("decoded service=%q fleet=%d", got.Service, len(got.Fleet))
	}
	if got.Fleet[0].Status == nil || got.Fleet[0].Status.CellCache.Hits != 36 {
		t.Fatalf("worker self-status lost in decode: %+v", got.Fleet[0])
	}
	if got.Fleet[1].StatusError == "" {
		t.Fatal("status_error lost in decode")
	}
	if got.Window == nil || len(got.Window.Series) != 3 {
		t.Fatalf("window lost in decode: %+v", got.Window)
	}
}

func TestFetchStatusNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := fetchStatus(context.Background(), srv.Client(), srv.URL); err == nil {
		t.Fatal("expected error on 500")
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 10); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
	s := sparkline([]float64{0, 1, 2, 3}, 10)
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d, want 4", len([]rune(s)))
	}
	if r := []rune(s); r[0] != sparkRunes[0] || r[3] != sparkRunes[len(sparkRunes)-1] {
		t.Fatalf("sparkline endpoints wrong: %q", s)
	}
	// Flat series draws low, width truncates to the newest points.
	if s := sparkline([]float64{5, 5, 5}, 2); []rune(s)[0] != sparkRunes[0] || len([]rune(s)) != 2 {
		t.Fatalf("flat/truncated sparkline = %q", s)
	}
}
