// Command bdservd serves the characterization + subsetting pipeline as a
// long-running HTTP service: clients POST jobs (a workload selection plus
// cluster/analysis configuration), the daemon executes them on a bounded
// pool over the parallel measurement grid, and identical submissions are
// deduplicated through a content-addressed result cache (in-memory LRU
// plus an on-disk JSON store under -data-dir).
//
// Job metadata is bounded (-max-jobs evicts the oldest terminal records)
// and persisted: unless disabled, lifecycle records are appended to an
// NDJSON journal under -data-dir and replayed on boot, so a restarted
// daemon still serves previously completed jobs' status and results.
// With -characterize-only the daemon accepts only observation-matrix
// jobs — the worker role behind a bdcoord shard coordinator.
//
// Usage:
//
//	bdservd [-addr :8356] [-data-dir bdservd-data] [-workers 1]
//	        [-queue 64] [-cache-entries 256] [-max-jobs 1024]
//	        [-journal auto] [-characterize-only] [-parallelism 0]
//	        [-throttle-cell 0]
//
// API (see DESIGN.md §4 for the full reference):
//
//	POST   /v1/jobs             submit a job
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result canonical analysis result JSON
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/cache/stats      cache counters
//	GET    /healthz             liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdservd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8356", "listen address")
		dataDir  = flag.String("data-dir", "bdservd-data", "on-disk result store ('' = memory only)")
		workers  = flag.Int("workers", 1, "concurrently executing jobs")
		queue    = flag.Int("queue", 64, "max queued jobs")
		entries  = flag.Int("cache-entries", 256, "in-memory LRU result entries")
		maxJobs  = flag.Int("max-jobs", 1024, "max retained job records (oldest terminal evicted)")
		journal  = flag.String("journal", "auto", "job journal path ('auto' = <data-dir>/journal.ndjson, '' = disabled)")
		charOnly = flag.Bool("characterize-only", false,
			"accept only observation-matrix jobs (shard-worker role)")
		par      = flag.Int("parallelism", 0, "per-job grid parallelism (0 = GOMAXPROCS)")
		throttle = flag.Duration("throttle-cell", 0,
			"artificial sleep per completed grid cell (testing knob: simulates a slow worker; never affects results)")
	)
	flag.Parse()
	if *workers < 1 || *queue < 1 || *entries < 1 || *maxJobs < 1 || *par < 0 {
		return fmt.Errorf("-workers, -queue, -cache-entries and -max-jobs must be ≥1 and -parallelism ≥0")
	}
	journalPath := *journal
	if journalPath == "auto" {
		journalPath = ""
		if *dataDir != "" {
			journalPath = filepath.Join(*dataDir, "journal.ndjson")
		}
	}

	mgr, err := service.New(service.Config{
		DataDir:          *dataDir,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *entries,
		MaxJobs:          *maxJobs,
		JournalPath:      journalPath,
		CharacterizeOnly: *charOnly,
		Parallelism:      *par,
		CellDelay:        *throttle,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("bdservd: listening on %s (data dir %q, %d worker(s))", *addr, *dataDir, *workers)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("bdservd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
