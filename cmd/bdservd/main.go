// Command bdservd serves the characterization + subsetting pipeline as a
// long-running HTTP service: clients POST jobs (a workload selection plus
// cluster/analysis configuration), the daemon executes them on a bounded
// pool over the parallel measurement grid, and identical submissions are
// deduplicated through a content-addressed result cache (in-memory LRU
// plus an on-disk JSON store under -data-dir).
//
// Job metadata is bounded (-max-jobs evicts the oldest terminal records)
// and persisted: unless disabled, lifecycle records are appended to an
// NDJSON journal under -data-dir and replayed on boot, so a restarted
// daemon still serves previously completed jobs' status and results.
// With -characterize-only the daemon accepts only observation-matrix
// jobs — the worker role behind a bdcoord shard coordinator. With
// -register it self-registers with a coordinator under a heartbeat
// lease (renewed every lease-ttl/3, retried with backoff across
// coordinator restarts) and releases the lease on shutdown.
//
// Usage:
//
//	bdservd [-addr :8356] [-data-dir bdservd-data] [-workers 1]
//	        [-queue 64] [-cache-entries 256] [-max-jobs 1024]
//	        [-journal auto] [-cell-cache auto] [-cell-cache-entries 0]
//	        [-cell-cache-max-age 0] [-characterize-only] [-parallelism 0]
//	        [-throttle-cell 0] [-drain-timeout 30s]
//	        [-log-level info] [-log-format text] [-stats-interval 1m]
//	        [-status-tick 5s] [-status-window 10m]
//	        [-trace-buffer 2048] [-pprof-addr localhost:6060]
//	        [-register http://coord:8360 -advertise http://thishost:8356
//	         -lease-ttl 30s]
//
// API (see DESIGN.md §4 for the full reference):
//
//	POST   /v1/jobs             submit a job
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result canonical analysis result JSON
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	GET    /v1/jobs/{id}/trace  trace export (?format=chrome)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/cache/stats      cache counters
//	GET    /v1/status           full operational snapshot + time series
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bdservd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8356", "listen address")
		dataDir = flag.String("data-dir", "bdservd-data", "on-disk result store ('' = memory only)")
		workers = flag.Int("workers", 1, "concurrently executing jobs")
		queue   = flag.Int("queue", 64, "max queued jobs")
		entries = flag.Int("cache-entries", 256, "in-memory LRU result entries")
		maxJobs = flag.Int("max-jobs", 1024, "max retained job records (oldest terminal evicted)")
		journal = flag.String("journal", "auto", "job journal path ('auto' = <data-dir>/journal.ndjson, '' = disabled)")
		cellDir = flag.String("cell-cache", "auto",
			"cell-level result cache dir ('auto' = <data-dir>/cells, '' = disabled): caches one workload×node column per entry so overlapping suites recompute only new cells")
		cellEntries = flag.Int("cell-cache-entries", 0,
			"max on-disk cell cache entries (0 = default)")
		cellMaxAge = flag.Duration("cell-cache-max-age", 0,
			"evict cell-cache entries older than this (mtime sweep; 0 = no age bound)")
		charOnly = flag.Bool("characterize-only", false,
			"accept only observation-matrix jobs (shard-worker role)")
		par      = flag.Int("parallelism", 0, "per-job grid parallelism (0 = GOMAXPROCS)")
		throttle = flag.Duration("throttle-cell", 0,
			"artificial sleep per completed grid cell (testing knob: simulates a slow worker; never affects results)")
		register = flag.String("register", "",
			"bdcoord base URL to self-register with (elastic fleet membership under a heartbeat lease)")
		advertise = flag.String("advertise", "",
			"own base URL to register as, e.g. http://thishost:8356 (required with -register)")
		leaseTTL = flag.Duration("lease-ttl", 30*time.Second,
			"heartbeat lease length requested from the coordinator (with -register)")
		drain = flag.Duration("drain-timeout", 30*time.Second,
			"on SIGTERM/SIGINT: how long to let in-flight jobs finish before cutting them short")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text, json")
		statsIvl  = flag.Duration("stats-interval", time.Minute,
			"period of the one-line INFO stats summary (0 disables)")
		traceBuf = flag.Int("trace-buffer", 2048,
			"per-job flight-recorder span capacity (0 disables tracing)")
		statusTick = flag.Duration("status-tick", 5*time.Second,
			"sampling tick of the /v1/status time-series window")
		statusWindow = flag.Duration("status-window", 10*time.Minute,
			"trailing extent of the /v1/status time-series window")
		pprofAddr = flag.String("pprof-addr", "",
			"listen address for net/http/pprof (e.g. localhost:6060; empty = disabled; bind to localhost unless you mean to expose profiles)")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	if *workers < 1 || *queue < 1 || *entries < 1 || *maxJobs < 1 || *par < 0 {
		return fmt.Errorf("-workers, -queue, -cache-entries and -max-jobs must be ≥1 and -parallelism ≥0")
	}
	if *register != "" && *advertise == "" {
		return fmt.Errorf("-register requires -advertise (the URL the coordinator should dial this daemon at)")
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive")
	}
	journalPath := *journal
	if journalPath == "auto" {
		journalPath = ""
		if *dataDir != "" {
			journalPath = filepath.Join(*dataDir, "journal.ndjson")
		}
	}
	cellCacheDir := *cellDir
	if cellCacheDir == "auto" {
		cellCacheDir = ""
		if *dataDir != "" {
			cellCacheDir = filepath.Join(*dataDir, "cells")
		}
	}

	// Flag semantics (0 = off) map to the config's (negative = off).
	traceSpans := *traceBuf
	if traceSpans == 0 {
		traceSpans = -1
	}

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	sampler := obs.NewSampler(reg, *statusTick, *statusWindow, service.StatusSeriesDefs())
	mgr, err := service.New(service.Config{
		DataDir:          *dataDir,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *entries,
		MaxJobs:          *maxJobs,
		JournalPath:      journalPath,
		CharacterizeOnly: *charOnly,
		CellCacheDir:     cellCacheDir,
		CellCacheEntries: *cellEntries,
		CellCacheMaxAge:  *cellMaxAge,
		Parallelism:      *par,
		CellDelay:        *throttle,
		TraceBuffer:      traceSpans,
		TraceService:     "bdservd",
		Registry:         reg,
		Sampler:          sampler,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()
	stopSampler := sampler.Start()
	defer stopSampler()

	if *pprofAddr != "" {
		stopPprof, err := obs.StartPprof(*pprofAddr, logger)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           obs.LogRequests(service.NewHandler(mgr), logger, reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("bdservd listening", "addr", *addr, "data_dir", *dataDir, "workers", *workers)

	stopStats := obs.StartStatsTicker(logger, *statsIvl, func() []slog.Attr {
		st := mgr.Stats()
		attrs := []slog.Attr{
			slog.Int("queued", st.Queued), slog.Int("running", st.Running),
			slog.Int("done", st.Done), slog.Int("failed", st.Failed),
			slog.Int("canceled", st.Canceled), slog.Int("queue_depth", st.QueueDepth),
			slog.Uint64("cache_hits", st.Cache.Hits), slog.Uint64("cache_misses", st.Cache.Misses),
			slog.Int("cache_entries", st.Cache.Entries),
		}
		if h, ok := reg.ReadHistogram("bd_stage_duration_seconds"); ok && h.Count > 0 {
			q := h.Quantiles(0.50, 0.95, 0.99)
			attrs = append(attrs,
				slog.Float64("stage_p50_s", q[0]),
				slog.Float64("stage_p95_s", q[1]),
				slog.Float64("stage_p99_s", q[2]))
		}
		return attrs
	})
	defer stopStats()

	var hb *heartbeat
	if *register != "" {
		hb = startHeartbeat(ctx, *register, *advertise, *leaseTTL, logger)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: release the lease first (the coordinator stops
	// dispatching new units here and releases any it had in flight), stop
	// accepting connections, then let running jobs drain.
	logger.Info("bdservd shutting down", "drain_timeout", *drain)
	if hb != nil {
		hb.close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if !mgr.Drain(*drain) {
		logger.Warn("drain timeout: cutting in-flight jobs short")
	}
	return nil
}

// heartbeat maintains this worker's fleet membership on a coordinator:
// register with retry/backoff, then renew the lease every ttl/3 so a
// transient miss never lapses it, and release it on close.
type heartbeat struct {
	c    *client.Client
	self string
	log  *slog.Logger
	done chan struct{}
	wg   sync.WaitGroup
}

func startHeartbeat(ctx context.Context, coordURL, selfURL string, ttl time.Duration, logger *slog.Logger) *heartbeat {
	hb := &heartbeat{c: client.New(coordURL), self: selfURL, log: logger, done: make(chan struct{})}
	hb.wg.Add(1)
	go func() {
		defer hb.wg.Done()
		registered := false
		backoff := time.Second
		for {
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			err := hb.c.RegisterWorker(rctx, selfURL, ttl.Seconds())
			cancel()
			wait := ttl / 3
			switch {
			case err == nil && !registered:
				registered = true
				backoff = time.Second
				hb.log.Info("registered with coordinator", "coordinator", coordURL, "lease", ttl)
			case err != nil:
				// Keep trying: the coordinator may be restarting. Back off
				// so a long outage doesn't spin, but cap well under any
				// plausible lease so recovery is prompt.
				if registered {
					hb.log.Warn("heartbeat failed", "coordinator", coordURL, "error", err)
					registered = false
				}
				wait = backoff
				if backoff *= 2; backoff > 15*time.Second {
					backoff = 15 * time.Second
				}
			}
			select {
			case <-hb.done:
				return
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
	}()
	return hb
}

// close stops the renewal loop and releases the lease (best effort: an
// unreachable coordinator just expires it by TTL instead).
func (hb *heartbeat) close() {
	close(hb.done)
	hb.wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hb.c.DeregisterWorker(ctx, hb.self); err != nil {
		hb.log.Warn("lease release failed (will expire by TTL)", "error", err)
	}
}
