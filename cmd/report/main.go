// Command report regenerates every table and figure of the paper's
// evaluation from a full simulated characterization run: Tables I–V,
// Figures 1–6, and the Section V observations.
//
// Usage:
//
//	report                  # everything (characterizes first, ~1 min)
//	report -only table4     # a single artifact
//	report -in metrics.csv  # reuse a cached characterization
//	report -save metrics.csv# cache the characterization for later runs
//	report -server URL      # offload characterization to a bdservd/bdcoord
//	report -workload-file f # extend the suite with custom definitions
//	report -trace           # per-stage / per-worker trace summary
//
// With -server the spec is submitted over the jobs API, progress is
// followed on the daemon's event stream, and the tables render from the
// fetched result's metric matrix — the expensive simulation runs (or
// replays from the daemon's cache) remotely instead of locally.
//
// -workload-file loads custom workload definitions (DESIGN.md §8) and
// appends their workloads to the characterized suite — locally or, with
// -server, by carrying the definitions inside the submitted job spec, so
// any bdservd/bdcoord measures them without knowing them in advance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/custom"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim/machine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "reuse a cached metrics CSV instead of simulating")
		server   = flag.String("server", "", "bdservd/bdcoord base URL: characterize there instead of locally")
		save     = flag.String("save", "", "write the characterization CSV here")
		only     = flag.String("only", "", "one of: table1..table5, figure1..figure6, observations")
		seed     = flag.Uint64("seed", 20140901, "seed for all stochastic components")
		defsFile = flag.String("workload-file", "", "JSON file of custom workload definitions to add to the suite (DESIGN.md §8)")
		trace    = flag.Bool("trace", false, "print a per-stage (and, with -server, per-worker) trace summary of the characterization")
	)
	flag.Parse()
	if *in != "" && *server != "" {
		return fmt.Errorf("-in and -server are mutually exclusive")
	}
	if *in != "" && *defsFile != "" {
		// A cached CSV has no rows for the definitions: rendering them in
		// Table I while every other artifact excludes them would be a
		// silently inconsistent report.
		return fmt.Errorf("-in and -workload-file are mutually exclusive (the CSV fixes the characterized suite)")
	}

	var defs []custom.Definition
	if *defsFile != "" {
		var err error
		if defs, err = custom.LoadFile(*defsFile); err != nil {
			return fmt.Errorf("-workload-file: %w", err)
		}
	}

	suiteCfg := workloads.DefaultConfig()
	suiteCfg.Seed = *seed
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return err
	}
	if len(defs) > 0 {
		cw, err := custom.Build(defs, suiteCfg)
		if err != nil {
			return err
		}
		suite = append(suite, cw...)
	}

	// Without -server, -trace runs the local pipeline under a stage timer
	// feeding a local flight recorder — the per-stage half of the summary
	// (there are no workers to attribute). With -server, the trace is
	// instead fetched from the daemon's recorder in fetchDataset.
	var (
		rec       *obs.FlightRecorder
		traceRoot *obs.SpanHandle
		timer     *core.StageTimer
		progress  core.Progress
	)
	const traceKey = "report"
	if *trace && *server == "" {
		rec = obs.NewFlightRecorder(traceKey, 1, 4096)
		traceRoot = rec.StartSpan(traceKey, traceKey, "", "job")
		tc := &obs.TraceContext{Rec: rec, JobID: traceKey, TraceID: traceKey, Root: traceRoot.ID()}
		timer = core.NewStageTimer(nil, nil)
		timer.OnSpan(func(stage core.Stage, start, end time.Time) {
			tc.RecordInterval("", string(stage), start, end,
				map[string]string{"kind": "stage", "status": "ok"})
		})
		progress = timer.Progress
	}

	var ds *core.Dataset
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		ds, err = core.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	case *server != "":
		ds, err = fetchDataset(*server, *seed, defs, *trace)
		if err != nil {
			return err
		}
	default:
		ccfg := cluster.DefaultConfig()
		ccfg.Seed = *seed
		fmt.Fprintf(os.Stderr, "characterizing %d workloads on the simulated cluster (~1 min)...\n", len(suite))
		ds, err = core.CharacterizeSuiteCtx(context.Background(), suite, ccfg, progress)
		if err != nil {
			return err
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	an, err := core.AnalyzeCtx(context.Background(), ds, core.DefaultAnalysis(), progress)
	if timer != nil {
		timer.Finish()
		traceRoot.End()
		export, _ := rec.Export(traceKey)
		fmt.Println(obs.Summarize(export).Table())
	}
	if err != nil {
		return err
	}
	observed, err := an.Observe()
	if err != nil {
		return err
	}
	fig5, err := report.Figure5(an, observed)
	if err != nil {
		return err
	}

	artifacts := []struct {
		key  string
		body string
	}{
		{"table1", report.Table1(suite)},
		{"table2", report.Table2()},
		{"table3", report.Table3(machine.Westmere())},
		{"figure1", report.Figure1(an)},
		{"figure2", report.Figure2(an)},
		{"figure3", report.Figure3(an)},
		{"figure4", report.Figure4(an)},
		{"figure5", fig5},
		{"table4", report.Table4(an)},
		{"table5", report.Table5(an)},
		{"figure6", report.Figure6(an)},
		{"observations", report.ObservationsReport(observed)},
	}

	want := strings.ToLower(*only)
	found := false
	for _, a := range artifacts {
		if want != "" && a.key != want {
			continue
		}
		found = true
		fmt.Println(a.body)
		fmt.Println()
	}
	if want != "" && !found {
		return fmt.Errorf("unknown artifact %q", *only)
	}
	return nil
}

// fetchDataset offloads characterization to a bdservd or bdcoord daemon:
// it submits the paper-shaped grid as a characterize-only job over the
// jobs API, follows the NDJSON event stream to completion, fetches the
// observation matrix and reduces it locally into the metric matrix. Only
// the millisecond-scale reduction and analysis run locally (the report
// renderers need the full Analysis object); the minutes-scale simulation
// happens — or replays from the cache — on the daemon. Observations mode
// also works against every daemon role, including `bdservd
// -characterize-only` shard workers. Custom workload definitions travel
// inside the spec, so the daemon measures them without prior knowledge.
func fetchDataset(base string, seed uint64, defs []custom.Definition, trace bool) (*core.Dataset, error) {
	spec := service.DefaultSpec()
	spec.Mode = service.ModeObservations
	spec.Suite.Seed = seed
	spec.Cluster.Seed = seed
	spec.CustomWorkloads = defs

	c := client.New(base)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		return nil, err
	}
	st, err := c.SubmitSpec(ctx, spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "submitted job %s to %s (state %s, cache hit %v)\n",
		st.ID, base, st.State, st.CacheHit)
	if st.State != service.StateDone {
		fin, err := c.WaitDone(ctx, st.ID, func(ev service.Event) {
			switch ev.Type {
			case "stage":
				fmt.Fprintf(os.Stderr, "  stage %s\n", ev.Stage)
			case "progress":
				if ev.Total > 0 && ev.Done == ev.Total {
					fmt.Fprintf(os.Stderr, "  %s: %d/%d cells\n", ev.Stage, ev.Done, ev.Total)
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if fin.State != service.StateDone {
			return nil, fmt.Errorf("remote job ended %s: %s", fin.State, fin.Error)
		}
	}
	data, err := c.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if trace {
		// The daemon's flight recorder has the full story — including,
		// on a coordinator, per-worker unit attribution. Best effort: an
		// older daemon or one started with tracing disabled 404s here.
		if export, terr := c.Trace(ctx, st.ID); terr == nil {
			fmt.Println(obs.Summarize(export).Table())
		} else {
			fmt.Fprintf(os.Stderr, "trace unavailable: %v\n", terr)
		}
	}
	printCellCacheTable(ctx, c)
	var oj benchio.ObservationsJSON
	if err := json.Unmarshal(data, &oj); err != nil {
		return nil, fmt.Errorf("decoding remote result: %w", err)
	}
	om, err := oj.Observations()
	if err != nil {
		return nil, err
	}
	return om.Reduce()
}

// printCellCacheTable prints the daemon's per-workload cell-cache hit
// ratios to stderr after a remote characterization: which workloads
// replayed from cache and which were simulated fresh is exactly what a
// sweep planner wants to know before the next submission. Best effort —
// a daemon without the status surface or a cell cache prints nothing.
func printCellCacheTable(ctx context.Context, c *client.Client) {
	snap, err := c.Status(ctx)
	if err != nil || snap.CellCache == nil || len(snap.CellCache.ByWorkload) == 0 {
		return
	}
	cc := snap.CellCache
	fmt.Fprintf(os.Stderr, "cell cache on %s: %d entries, hit ratio %.2f\n",
		c.BaseURL, cc.Entries, cc.HitRatio)
	fmt.Fprintf(os.Stderr, "  %-24s %8s %8s %6s\n", "WORKLOAD", "HITS", "MISSES", "RATIO")
	for _, w := range cc.ByWorkload {
		fmt.Fprintf(os.Stderr, "  %-24s %8d %8d %6.2f\n", w.Workload, w.Hits, w.Misses, w.HitRatio)
	}
}
