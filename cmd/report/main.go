// Command report regenerates every table and figure of the paper's
// evaluation from a full simulated characterization run: Tables I–V,
// Figures 1–6, and the Section V observations.
//
// Usage:
//
//	report                  # everything (characterizes first, ~1 min)
//	report -only table4     # a single artifact
//	report -in metrics.csv  # reuse a cached characterization
//	report -save metrics.csv# cache the characterization for later runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim/machine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in   = flag.String("in", "", "reuse a cached metrics CSV instead of simulating")
		save = flag.String("save", "", "write the characterization CSV here")
		only = flag.String("only", "", "one of: table1..table5, figure1..figure6, observations")
		seed = flag.Uint64("seed", 20140901, "seed for all stochastic components")
	)
	flag.Parse()

	suiteCfg := workloads.DefaultConfig()
	suiteCfg.Seed = *seed
	suite, err := workloads.Suite(suiteCfg)
	if err != nil {
		return err
	}

	var ds *core.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		ds, err = core.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		ccfg := cluster.DefaultConfig()
		ccfg.Seed = *seed
		fmt.Fprintln(os.Stderr, "characterizing 32 workloads on the simulated cluster (~1 min)...")
		ds, err = core.CharacterizeSuite(suite, ccfg)
		if err != nil {
			return err
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	an, err := core.Analyze(ds, core.DefaultAnalysis())
	if err != nil {
		return err
	}
	obs, err := an.Observe()
	if err != nil {
		return err
	}
	fig5, err := report.Figure5(an, obs)
	if err != nil {
		return err
	}

	artifacts := []struct {
		key  string
		body string
	}{
		{"table1", report.Table1(suite)},
		{"table2", report.Table2()},
		{"table3", report.Table3(machine.Westmere())},
		{"figure1", report.Figure1(an)},
		{"figure2", report.Figure2(an)},
		{"figure3", report.Figure3(an)},
		{"figure4", report.Figure4(an)},
		{"figure5", fig5},
		{"table4", report.Table4(an)},
		{"table5", report.Table5(an)},
		{"figure6", report.Figure6(an)},
		{"observations", report.ObservationsReport(obs)},
	}

	want := strings.ToLower(*only)
	found := false
	for _, a := range artifacts {
		if want != "" && a.key != want {
			continue
		}
		found = true
		fmt.Println(a.body)
		fmt.Println()
	}
	if want != "" && !found {
		return fmt.Errorf("unknown artifact %q", *only)
	}
	return nil
}
