// Quickstart: characterize a handful of BigDataBench workloads on the
// simulated cluster, run the paper's PCA + clustering pipeline, and print
// the representative subset. Runs in a few seconds.
package main

import (
	"fmt"
	"log"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
)

func main() {
	// Build the standard 32-workload suite and pick six of them.
	suite, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var picked []workloads.Workload
	for _, name := range []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep", "H-Kmeans", "S-Kmeans"} {
		w, err := workloads.ByName(suite, name)
		if err != nil {
			log.Fatal(err)
		}
		picked = append(picked, w)
	}

	// Characterize them on a scaled-down cluster (1 node, small budget).
	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = 1
	ccfg.InstructionsPerCore = 10000
	ds, err := core.CharacterizeSuite(picked, ccfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run the full statistical pipeline.
	acfg := core.DefaultAnalysis()
	acfg.KMax = 4
	an, err := core.Analyze(ds, acfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d PCs retained (Kaiser), %.1f%% variance\n", an.NumPCs, an.Variance*100)
	fmt.Printf("BIC selected K = %d clusters\n", an.KBest.K)
	fmt.Println("representative subset (farthest-from-centroid policy):")
	for _, r := range an.FarthestReps {
		fmt.Printf("  %-12s represents %d workload(s)\n", r.Workload, r.ClusterSize)
	}
}
