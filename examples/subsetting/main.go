// Subsetting reproduces the paper's Section VI: K-means over the
// principal-component scores with the Bayesian Information Criterion
// choosing K (Table IV), representative selection by the
// nearest-to-centroid and farthest-from-centroid policies (Table V), and
// Kiviat profiles of the chosen representatives (Fig. 6) — yielding the
// "BigDataBench simulator version" subset.
//
// Full-scale experiment; expect roughly a minute of simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	fmt.Println("characterizing 32 workloads on the simulated 5-node cluster...")
	ds, err := core.Characterize(workloads.DefaultConfig(), cluster.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.Analyze(ds, core.DefaultAnalysis())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.Table4(an))
	fmt.Println(report.Table5(an))
	fmt.Println(report.Figure6(an))

	fmt.Println("released subset (the paper's BigDataBench simulator version analog):")
	for _, name := range an.SubsetNames() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Printf("\nthe farthest-from-centroid policy covers %.2f max linkage distance vs %.2f for nearest —\n",
		an.FarthestMaxLinkage, an.NearestMaxLinkage)
	fmt.Println("boundary workloads preserve more of the suite's diversity (paper §VI-B).")
}
