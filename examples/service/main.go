// Service example: a bdservd client. It submits a small characterization
// job over the HTTP API (via the shared internal/service/client package),
// streams the daemon's per-stage progress events, fetches the analysis
// result, and then resubmits the identical job to demonstrate the
// content-addressed cache hit.
//
// With no -addr it spins up an in-process daemon on a loopback port, so
// the example is self-contained:
//
//	go run ./examples/service
//	go run ./examples/service -addr http://localhost:8356   # external daemon
//	go run ./examples/service -addr http://localhost:8360   # via a bdcoord
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (empty = start one in-process)")
	workloads := flag.String("workloads", "H-Sort,S-Sort,H-Grep,S-Grep", "comma-separated workload names")
	instructions := flag.Int("instructions", 6000, "instructions per core per node")
	nodes := flag.Int("nodes", 2, "slave nodes")
	flag.Parse()

	base := *addr
	if base == "" {
		var stopFn func()
		var err error
		base, stopFn, err = startInProcess()
		if err != nil {
			log.Fatal(err)
		}
		defer stopFn()
		fmt.Printf("started in-process daemon at %s\n", base)
	}

	ctx := context.Background()
	c := client.New(base)
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}

	kmax := 4
	req := service.JobRequest{
		Workloads:    strings.Split(*workloads, ","),
		Instructions: instructions,
		Nodes:        nodes,
		KMax:         &kmax,
	}

	// Submit.
	st, err := c.Submit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (state %s, cache hit %v)\n", st.ID, st.State, st.CacheHit)

	// Stream progress events until the job completes.
	if !terminal(st.State) {
		fin, err := c.WaitDone(ctx, st.ID, func(ev service.Event) {
			switch ev.Type {
			case "state":
				fmt.Printf("  [%02d] state → %s\n", ev.Seq, ev.State)
			case "stage":
				fmt.Printf("  [%02d] stage → %s\n", ev.Seq, ev.Stage)
			case "progress":
				fmt.Printf("  [%02d] %s: %d/%d cells\n", ev.Seq, ev.Stage, ev.Done, ev.Total)
			case "done":
				fmt.Printf("  [%02d] done, result %s…\n", ev.Seq, ev.ResultHash[:12])
			case "error":
				fmt.Printf("  [%02d] error: %s\n", ev.Seq, ev.Error)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		if fin.State != service.StateDone {
			log.Fatalf("job ended %s: %s", fin.State, fin.Error)
		}
		st = fin
	}

	// Fetch the canonical result and print the subset.
	data, err := c.Result(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	var result struct {
		BestK  int      `json:"best_k"`
		NumPCs int      `json:"num_pcs"`
		Subset []string `json:"subset"`
	}
	if err := json.Unmarshal(data, &result); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: %d PCs, K = %d, subset = %s\n",
		result.NumPCs, result.BestK, strings.Join(result.Subset, ", "))

	// Identical resubmission: served from the cache, same result hash.
	start := time.Now()
	again, err := c.Submit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: state %s, cache hit %v, same hash %v (%.1f ms)\n",
		again.State, again.CacheHit, again.ResultHash != "" && again.ResultHash == st.ResultHash,
		float64(time.Since(start).Microseconds())/1000)
}

func terminal(s service.State) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCanceled
}

// startInProcess runs a manager + HTTP server on a loopback port.
func startInProcess() (string, func(), error) {
	mgr, err := service.New(service.Config{DataDir: "", Workers: 1})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		mgr.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
