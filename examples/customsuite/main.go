// Customsuite shows that the library generalizes beyond BigDataBench: it
// defines a brand-new workload from scratch (a streaming log analyzer on
// both stacks), characterizes it together with a few standard workloads,
// and subsets the combined suite — the workflow a benchmark designer
// would use to decide whether a new workload is redundant.
package main

import (
	"fmt"
	"log"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/stack"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/trace"
)

// logAnalyzer builds a custom workload profile on the given stack: a
// sequential scan with a small hot dictionary, very branch-heavy.
func logAnalyzer(st stack.Profile) workloads.Workload {
	user := trace.Params{
		LoadFrac: 0.33, StoreFrac: 0.04, BranchFrac: 0.26, FPFrac: 0.002, SSEFrac: 0.004,
		KernelFrac:     0.03,
		UopsPerInstr:   1.3,
		ComplexFrac:    0.06,
		DepFrac:        0.2,
		BranchEntropy:  0.1,
		CodeFootprintB: 128 << 10, CodeJumpFrac: 0.09, CodeSkew: 0.6,
		DataFootprintB: uint64(14 << 20 * st.DataScale), DataSkew: 0.55, SeqFrac: 0.9,
		SharedFrac: 0, SharedFootprintB: 1 << 20, SharedWriteFrac: 0.1,
	}
	compute := trace.Blend(user, st.Base, st.Dominance)
	shuffle := compute
	shuffle.KernelFrac = st.ShuffleKernelFrac
	shuffle.SeqFrac = st.ShuffleSeqFrac
	prof := trace.Profile{
		Name:        st.Prefix + "LogAnalyzer",
		Compute:     compute,
		Shuffle:     shuffle,
		ShuffleFrac: 0.1,
		PhasePeriod: 8192,
	}
	return workloads.Workload{
		Name:        prof.Name,
		Algorithm:   "LogAnalyzer",
		Stack:       st,
		Category:    workloads.CategoryOffline,
		ProblemSize: "64 GB (custom)",
		DataType:    "unstructured log",
		Profile:     prof,
	}
}

func main() {
	std, err := workloads.Suite(workloads.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var suite []workloads.Workload
	for _, name := range []string{"H-Grep", "S-Grep", "H-WordCount", "S-WordCount", "H-Sort", "S-Sort"} {
		w, err := workloads.ByName(std, name)
		if err != nil {
			log.Fatal(err)
		}
		suite = append(suite, w)
	}
	suite = append(suite, logAnalyzer(stack.Hadoop()), logAnalyzer(stack.Spark()))

	ccfg := cluster.DefaultConfig()
	ccfg.SlaveNodes = 2
	ccfg.InstructionsPerCore = 20000
	ds, err := core.CharacterizeSuite(suite, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	acfg := core.DefaultAnalysis()
	acfg.KMax = 6
	an, err := core.Analyze(ds, acfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suite of %d workloads → %d clusters (BIC)\n\n", len(suite), an.KBest.K)
	for c := 0; c < an.KBest.K; c++ {
		fmt.Printf("cluster %d:", c+1)
		for _, i := range an.KBest.Members(c) {
			fmt.Printf(" %s", ds.Labels[i])
		}
		fmt.Println()
	}
	fmt.Println("\nverdict for the new workloads:")
	for _, name := range []string{"H-LogAnalyzer", "S-LogAnalyzer"} {
		for i, l := range ds.Labels {
			if l != name {
				continue
			}
			members := an.KBest.Members(an.KBest.Assign[i])
			if len(members) == 1 {
				fmt.Printf("  %s exhibits unique behaviour → keep it in the suite\n", name)
			} else {
				fmt.Printf("  %s clusters with %d existing workloads → redundant for\n", name, len(members)-1)
				fmt.Println("    microarchitectural studies; an existing representative covers it")
			}
		}
	}
}
