// Customsuite walks the benchmark-designer workflow on the open
// scenario registry (internal/bigdata/custom, DESIGN.md §8): load
// declarative workload definitions from scenarios.json, mix them with
// built-ins and an embedded preset inside one JobSpec, characterize the
// suite, and read the subsetting verdict — does the new scenario exhibit
// behaviour the existing suite lacks, or is it redundant?
//
// Because the definitions live in the spec, the same JSON runs unchanged
// against a bdservd/bdcoord daemon (`report -workload-file … -server …`
// or a {"custom_workloads": …} job submission), with the same
// content-addressed job ID everywhere.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"

	"repro/internal/bigdata/custom"
	"repro/internal/core"
	"repro/internal/service"
)

// The definitions ship inside the binary, so the example runs from any
// directory; the same file works verbatim as `bdbench -workload-file
// examples/customsuite/scenarios.json`.
//
//go:embed scenarios.json
var scenariosJSON string

func main() {
	defs, err := custom.Load(strings.NewReader(scenariosJSON))
	if err != nil {
		log.Fatal(err)
	}
	presets, err := custom.PresetsByName([]string{"MemThrash"})
	if err != nil {
		log.Fatal(err)
	}
	defs = append(defs, presets...)

	// One spec carries everything: a built-in anchor set, the file
	// definitions' H-/S- variants, and the preset. The job ID is a hash
	// of the normalized spec — definitions included — so this exact job
	// dedupes against any daemon that ever ran it.
	spec := service.DefaultSpec()
	spec.Workloads = []string{
		"H-Grep", "S-Grep", "H-WordCount", "S-WordCount", "H-Sort", "S-Sort",
		"H-LogAnalyzer", "S-LogAnalyzer",
		"H-GraphTriangles", "S-GraphTriangles",
		"H-MemThrash", "S-MemThrash",
	}
	spec.CustomWorkloads = defs
	spec.Cluster.SlaveNodes = 2
	spec.Cluster.InstructionsPerCore = 20000
	spec.Analysis.KMax = 8
	id, err := spec.ID()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content-addressed job ID (definitions included): %s\n\n", id)

	suite, err := spec.ResolveSuite()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.CharacterizeSuite(suite, spec.Cluster)
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.Analyze(ds, spec.Analysis)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suite of %d workloads → %d clusters (BIC)\n\n", len(suite), an.KBest.K)
	for c := 0; c < an.KBest.K; c++ {
		fmt.Printf("cluster %d:", c+1)
		for _, i := range an.KBest.Members(c) {
			fmt.Printf(" %s", ds.Labels[i])
		}
		fmt.Println()
	}

	fmt.Println("\nverdict for the custom scenarios:")
	for _, name := range []string{
		"H-LogAnalyzer", "S-LogAnalyzer",
		"H-GraphTriangles", "S-GraphTriangles",
		"H-MemThrash", "S-MemThrash",
	} {
		for i, l := range ds.Labels {
			if l != name {
				continue
			}
			members := an.KBest.Members(an.KBest.Assign[i])
			if len(members) == 1 {
				fmt.Printf("  %s exhibits unique behaviour → keep it in the suite\n", name)
			} else {
				fmt.Printf("  %s clusters with %d other workload(s) → an existing\n", name, len(members)-1)
				fmt.Println("    representative covers it for microarchitectural studies")
			}
		}
	}
}
