// Stackimpact reproduces the paper's Section V study: it characterizes all
// 32 workloads, clusters them hierarchically on the principal components,
// and reports how the software stack (Hadoop vs Spark) dominates
// microarchitectural behaviour — the dendrogram (Fig. 1), the PC scatter
// plots (Figs. 2–3), the factor loadings (Fig. 4), the stack-separating
// metric comparison (Fig. 5), and Observations 1–9.
//
// This is the full-scale experiment; expect roughly a minute of
// simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/bigdata/cluster"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	fmt.Println("characterizing 32 workloads on the simulated 5-node cluster...")
	ds, err := core.Characterize(workloads.DefaultConfig(), cluster.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.Analyze(ds, core.DefaultAnalysis())
	if err != nil {
		log.Fatal(err)
	}
	obs, err := an.Observe()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.Figure1(an))
	fmt.Println(report.Figure2(an))
	fmt.Println(report.Figure3(an))
	fmt.Println(report.Figure4(an))
	if fig5, err := report.Figure5(an, obs); err == nil {
		fmt.Println(fig5)
	} else {
		log.Fatal(err)
	}
	fmt.Println(report.ObservationsReport(obs))

	fmt.Printf("\nconclusion: %.0f%% of first-iteration merges are same-stack; ", obs.SameStackFraction*100)
	fmt.Printf("Hadoop workloads cluster within %.2f mean linkage distance vs %.2f for Spark —\n",
		obs.MeanCopheneticHadoop, obs.MeanCopheneticSpark)
	fmt.Println("the software stack shapes microarchitectural behaviour more than the algorithm does.")
}
