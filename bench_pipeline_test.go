package repro

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/benchio"
	"repro/internal/bigdata/workloads"
	"repro/internal/core"
	"repro/internal/obs"
)

// The end-to-end pipeline benchmarks (EXPERIMENTS.md §3) time core.Run —
// characterization grid + PCA + hierarchical clustering + BIC-driven
// K-means + representative selection — at the harness scale, once with
// all parallelism disabled and once with the worker pools at GOMAXPROCS.
// When both variants have run, the pair is written to BENCH_pipeline.json
// (via internal/benchio, shared with cmd/bdbench -bench) so the perf
// trajectory is tracked across PRs:
//
//	go test -bench 'BenchmarkPipeline' -benchtime 3x
//
// The two variants are asserted to produce identical analyses: the same
// seeds must yield the same output at any Parallelism setting.

var (
	pipelineMu      sync.Mutex
	pipelineResults = map[string]benchio.Variant{}
)

const pipelineBenchScale = "2 nodes, 12000 instr/core, 60 slices"

// runPipelineBench times core.Run with the given parallelism and records
// the result under name.
func runPipelineBench(b *testing.B, name string, par int) {
	ccfg := benchClusterConfig()
	ccfg.Parallelism = par
	acfg := core.DefaultAnalysis()
	acfg.Parallelism = par

	var an *core.Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		an, err = core.Run(workloads.DefaultConfig(), ccfg, acfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	pipelineMu.Lock()
	defer pipelineMu.Unlock()
	pipelineResults[name] = benchio.Variant{
		SecondsPerOp: b.Elapsed().Seconds() / float64(b.N),
		Iterations:   b.N,
		Parallelism:  par,
		BestK:        an.KBest.K,
		Subset:       an.SubsetNames(),
	}
	seq, okSeq := pipelineResults["sequential"]
	parRes, okPar := pipelineResults["parallel"]
	if okSeq && okPar {
		if err := benchio.Write(
			"core.Run end-to-end (characterize 32 workloads + analyze)",
			pipelineBenchScale, seq, parRes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_Sequential is the full paper pipeline with every
// worker pool limited to one goroutine — the baseline the parallel
// variant is compared against.
func BenchmarkPipeline_Sequential(b *testing.B) {
	runPipelineBench(b, "sequential", 1)
}

// BenchmarkPipeline_Parallel is the full paper pipeline with the
// flattened characterization grid and analysis stage running at
// GOMAXPROCS workers.
func BenchmarkPipeline_Parallel(b *testing.B) {
	runPipelineBench(b, "parallel", runtime.GOMAXPROCS(0))
}

// BenchmarkPipeline_TracedSequential re-runs the sequential pipeline
// under a live flight recorder — stage spans recorded per iteration,
// exactly the daemons' tracing path — so the traced/untraced delta lands
// in BENCH_pipeline.json as tracing_overhead_pct (acceptance: <2%). It
// is defined after the untraced variants so a full `-bench
// BenchmarkPipeline` run writes the pair rows first, then merges this
// one in.
func BenchmarkPipeline_TracedSequential(b *testing.B) {
	ccfg := benchClusterConfig()
	ccfg.Parallelism = 1
	acfg := core.DefaultAnalysis()
	acfg.Parallelism = 1

	var an *core.Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := obs.NewFlightRecorder("bench", 1, 4096)
		root := rec.StartSpan("bench", "bench", "", "job")
		tc := &obs.TraceContext{Rec: rec, JobID: "bench", TraceID: "bench", Root: root.ID()}
		timer := core.NewStageTimer(nil, nil)
		timer.OnSpan(func(stage core.Stage, start, end time.Time) {
			tc.RecordInterval("", string(stage), start, end,
				map[string]string{"kind": "stage", "status": "ok"})
		})
		var err error
		an, err = core.RunCtx(context.Background(), workloads.DefaultConfig(), ccfg, acfg, timer.Progress)
		timer.Finish()
		root.End()
		if err != nil {
			b.Fatal(err)
		}
		if export, ok := rec.Export("bench"); !ok || len(export.Spans) == 0 {
			b.Fatal("traced pipeline produced no spans")
		}
	}
	b.StopTimer()

	pipelineMu.Lock()
	defer pipelineMu.Unlock()
	pipelineResults["traced"] = benchio.Variant{
		SecondsPerOp: b.Elapsed().Seconds() / float64(b.N),
		Iterations:   b.N,
		Parallelism:  1,
		BestK:        an.KBest.K,
		Subset:       an.SubsetNames(),
	}
	seq, okSeq := pipelineResults["sequential"]
	traced := pipelineResults["traced"]
	if okSeq {
		if err := benchio.WriteTracingOverhead(seq, traced); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeGrid isolates the measurement-grid stage (no
// analysis) at GOMAXPROCS — the dominant cost of the pipeline.
func BenchmarkCharacterizeGrid(b *testing.B) {
	ccfg := benchClusterConfig()
	ccfg.Parallelism = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Characterize(workloads.DefaultConfig(), ccfg); err != nil {
			b.Fatal(err)
		}
	}
}
