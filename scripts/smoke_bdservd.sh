#!/usr/bin/env bash
# Smoke test for the bdservd characterization service, run by CI and
# usable locally: start the daemon, submit a tiny 2-workload job, poll it
# to completion, then verify that resubmitting the identical job is an
# immediate cache hit with the identical result hash and byte-identical
# result body.
set -euo pipefail

ADDR="127.0.0.1:8356"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVD_PID=""
trap 'kill "${SERVD_PID:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building bdservd"
go build -o "$WORKDIR/bdservd" ./cmd/bdservd

echo "==> starting daemon"
"$WORKDIR/bdservd" -addr "$ADDR" -data-dir "$WORKDIR/data" &
SERVD_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVD_PID" 2>/dev/null; then echo "daemon died" >&2; exit 1; fi
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "daemon never became healthy" >&2; exit 1; }

JOB='{"workloads":["H-Sort","S-Sort"],"nodes":2,"instructions":6000,"kmax":3}'

json_field() { # json_field <file> <field> — bools print as True/False
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get(sys.argv[2], ""))' "$1" "$2"
}

echo "==> submitting job"
curl -fsS -X POST -d "$JOB" "$BASE/v1/jobs" -o "$WORKDIR/submit1.json"
ID=$(json_field "$WORKDIR/submit1.json" id)
HIT1=$(json_field "$WORKDIR/submit1.json" cache_hit)
[ -n "$ID" ] || { echo "no job id in response" >&2; cat "$WORKDIR/submit1.json" >&2; exit 1; }
[ "$HIT1" = "False" ] || { echo "first submission reported cache_hit=$HIT1" >&2; exit 1; }
echo "    job $ID"

echo "==> polling to completion"
STATE=""
for i in $(seq 1 300); do
  curl -fsS "$BASE/v1/jobs/$ID" -o "$WORKDIR/status.json"
  STATE=$(json_field "$WORKDIR/status.json" state)
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "job ended $STATE:" >&2; cat "$WORKDIR/status.json" >&2; exit 1 ;;
  esac
  sleep 1
done
[ "$STATE" = "done" ] || { echo "job stuck in state '$STATE'" >&2; exit 1; }
HASH1=$(json_field "$WORKDIR/status.json" result_hash)
[ -n "$HASH1" ] || { echo "done job has no result_hash" >&2; exit 1; }
echo "    result hash $HASH1"

echo "==> checking the event stream replays to a terminal event"
curl -fsS "$BASE/v1/jobs/$ID/events" -o "$WORKDIR/events.ndjson"
grep -q '"type":"done"' "$WORKDIR/events.ndjson" || { echo "event stream lacks done event" >&2; exit 1; }

echo "==> resubmitting identical job (must be an immediate cache hit)"
START=$(date +%s)
curl -fsS -X POST -d "$JOB" "$BASE/v1/jobs" -o "$WORKDIR/submit2.json"
ELAPSED=$(( $(date +%s) - START ))
HIT2=$(json_field "$WORKDIR/submit2.json" cache_hit)
STATE2=$(json_field "$WORKDIR/submit2.json" state)
HASH2=$(json_field "$WORKDIR/submit2.json" result_hash)
[ "$HIT2" = "True" ] || { echo "second submission cache_hit=$HIT2" >&2; cat "$WORKDIR/submit2.json" >&2; exit 1; }
[ "$STATE2" = "done" ] || { echo "second submission state=$STATE2" >&2; exit 1; }
[ "$HASH2" = "$HASH1" ] || { echo "result hash changed: $HASH1 vs $HASH2" >&2; exit 1; }
[ "$ELAPSED" -le 5 ] || { echo "cached resubmission took ${ELAPSED}s" >&2; exit 1; }

echo "==> verifying byte-identical result bodies"
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORKDIR/result1.json"
curl -fsS "$BASE/v1/jobs/$ID/result" -o "$WORKDIR/result2.json"
cmp "$WORKDIR/result1.json" "$WORKDIR/result2.json"

echo "==> cache stats"
curl -fsS "$BASE/v1/cache/stats"
HITS=$(curl -fsS "$BASE/v1/cache/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["hits"])')
[ "$HITS" -ge 1 ] || { echo "cache reports zero hits" >&2; exit 1; }

echo "==> bdservd smoke OK (job $ID, hash $HASH1, cache hits $HITS)"
