#!/usr/bin/env bash
# Smoke test for the bdcoord shard coordinator, run by CI and usable
# locally: boot two characterize-only bdservd workers and one bdcoord,
# submit the CI-scale job to the coordinator, and verify the merged
# result hash (and bytes) are identical to a direct single-daemon run of
# the same spec. Then restart the coordinator and verify the job journal
# replays: the finished job's status and result are still served.
# Next, submit a job whose spec carries custom workload definitions (a
# preset family plus an inline ad-hoc definition) and assert the merged
# result is byte-identical to the single-daemon run and that
# resubmission is a cache hit with an unchanged job ID.
# Then resubmit the first suite with one workload changed: the
# coordinator's shared cell cache must serve the unchanged workloads'
# columns (bd_cellcache_hits_total rises) while the merged bytes stay
# identical to a cell-cache-disabled coordinator run.
# Finally, run the heterogeneous-speed scenario: one worker throttled
# with -throttle-cell, asserting the work-stealing dispatcher (a) still
# produces the identical hash, (b) beats the static-planner worst case
# wall-clock, and (c) reports both workers healthy on /v1/workers with
# the fast worker having executed more units.
set -euo pipefail

W1_ADDR="127.0.0.1:8361"
W2_ADDR="127.0.0.1:8362"
CO_ADDR="127.0.0.1:8360"
SD_ADDR="127.0.0.1:8363"
W3_ADDR="127.0.0.1:8364"
W4_ADDR="127.0.0.1:8365"
C2_ADDR="127.0.0.1:8366"
C3_ADDR="127.0.0.1:8367"
C2="http://$C2_ADDR"
C3="http://$C3_ADDR"
CO="http://$CO_ADDR"
SD="http://$SD_ADDR"
WORKDIR="$(mktemp -d)"
PIDS=()
# ${PIDS[@]:-} so the trap survives an empty array under set -u (bash<4.4).
trap 'kill "${PIDS[@]:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building bdservd + bdcoord + bdtop"
go build -o "$WORKDIR/bdservd" ./cmd/bdservd
go build -o "$WORKDIR/bdcoord" ./cmd/bdcoord
go build -o "$WORKDIR/bdtop" ./cmd/bdtop

wait_healthy() { # wait_healthy <base-url> <pid>
  for i in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "daemon at $1 died" >&2; return 1; fi
    sleep 0.2
  done
  echo "daemon at $1 never became healthy" >&2
  return 1
}

json_field() { # json_field <file> <field> — bools print as True/False
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get(sys.argv[2], ""))' "$1" "$2"
}

poll_done() { # poll_done <base-url> <job-id> <status-file>
  local state=""
  for i in $(seq 1 300); do
    curl -fsS "$1/v1/jobs/$2" -o "$3"
    state=$(json_field "$3" state)
    case "$state" in
      done) return 0 ;;
      failed|canceled) echo "job ended $state:" >&2; cat "$3" >&2; return 1 ;;
    esac
    sleep 1
  done
  echo "job stuck in state '$state'" >&2
  return 1
}

echo "==> starting two characterize-only workers"
"$WORKDIR/bdservd" -addr "$W1_ADDR" -data-dir "$WORKDIR/w1" -characterize-only &
PIDS+=($!); W1_PID=$!
"$WORKDIR/bdservd" -addr "$W2_ADDR" -data-dir "$WORKDIR/w2" -characterize-only &
PIDS+=($!); W2_PID=$!
wait_healthy "http://$W1_ADDR" "$W1_PID"
wait_healthy "http://$W2_ADDR" "$W2_PID"

echo "==> starting coordinator + single-daemon reference"
"$WORKDIR/bdcoord" -addr "$CO_ADDR" -data-dir "$WORKDIR/coord" \
  -workers "http://$W1_ADDR,http://$W2_ADDR" &
PIDS+=($!); CO_PID=$!
"$WORKDIR/bdservd" -addr "$SD_ADDR" -data-dir "$WORKDIR/single" &
PIDS+=($!); SD_PID=$!
wait_healthy "$CO" "$CO_PID"
wait_healthy "$SD" "$SD_PID"

JOB='{"workloads":["H-Sort","S-Sort","H-Grep","S-Grep"],"nodes":2,"instructions":6000,"kmax":3}'

echo "==> submitting job to the coordinator"
curl -fsS -X POST -d "$JOB" "$CO/v1/jobs" -o "$WORKDIR/co_submit.json"
CO_ID=$(json_field "$WORKDIR/co_submit.json" id)
[ -n "$CO_ID" ] || { echo "no job id from coordinator" >&2; cat "$WORKDIR/co_submit.json" >&2; exit 1; }
echo "    job $CO_ID"
poll_done "$CO" "$CO_ID" "$WORKDIR/co_status.json"
CO_HASH=$(json_field "$WORKDIR/co_status.json" result_hash)
[ -n "$CO_HASH" ] || { echo "coordinator job has no result_hash" >&2; exit 1; }
echo "    merged hash $CO_HASH"

echo "==> verifying both workers actually executed shards"
W1_STORES=$(curl -fsS "http://$W1_ADDR/v1/cache/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["stores"])')
W2_STORES=$(curl -fsS "http://$W2_ADDR/v1/cache/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["stores"])')
[ "$W1_STORES" -ge 1 ] || { echo "worker 1 executed no shard" >&2; exit 1; }
[ "$W2_STORES" -ge 1 ] || { echo "worker 2 executed no shard" >&2; exit 1; }

echo "==> running the same spec on a single daemon"
curl -fsS -X POST -d "$JOB" "$SD/v1/jobs" -o "$WORKDIR/sd_submit.json"
SD_ID=$(json_field "$WORKDIR/sd_submit.json" id)
poll_done "$SD" "$SD_ID" "$WORKDIR/sd_status.json"
SD_HASH=$(json_field "$WORKDIR/sd_status.json" result_hash)

echo "==> comparing results"
[ "$CO_ID" = "$SD_ID" ] || { echo "job IDs differ: $CO_ID vs $SD_ID" >&2; exit 1; }
[ "$CO_HASH" = "$SD_HASH" ] || { echo "MERGE NOT DETERMINISTIC: coordinator $CO_HASH vs single-daemon $SD_HASH" >&2; exit 1; }
curl -fsS "$CO/v1/jobs/$CO_ID/result" -o "$WORKDIR/co_result.json"
curl -fsS "$SD/v1/jobs/$SD_ID/result" -o "$WORKDIR/sd_result.json"
cmp "$WORKDIR/co_result.json" "$WORKDIR/sd_result.json"
echo "    byte-identical at 2 workers vs 1 daemon"

echo "==> fetching the distributed trace"
# The flight recorder saw the whole job: assert the canonical export has
# at least one unit span attributed to each worker, monotone span
# timestamps, and worker-side stage spans nested (via exec) under the
# coordinator's unit spans. The Chrome trace_event rendering is saved
# next to the repo's other CI artifacts for chrome://tracing inspection.
curl -fsS "$CO/v1/jobs/$CO_ID/trace" -o "$WORKDIR/co_trace.json"
curl -fsS "$CO/v1/jobs/$CO_ID/trace?format=chrome" -o smoke_bdcoord_trace.json
python3 - "$WORKDIR/co_trace.json" "http://$W1_ADDR" "http://$W2_ADDR" <<'PY'
import datetime, json, re, sys

def ts(s):  # RFC3339Nano → datetime (trim to µs for fromisoformat)
    s = s.replace('Z', '+00:00')
    m = re.match(r'(.*\.)(\d+)([+-].*)', s)
    if m:
        s = m.group(1) + m.group(2)[:6].ljust(6, '0') + m.group(3)
    return datetime.datetime.fromisoformat(s)

t = json.load(open(sys.argv[1]))
spans = t['spans']
assert spans, 'trace export has no spans'
by_id = {sp['span_id']: sp for sp in spans}
for sp in spans:
    assert ts(sp['start']) <= ts(sp['end']), f'span {sp["name"]} ends before it starts: {sp}'
for worker in sys.argv[2:4]:
    units = [sp for sp in spans
             if sp['name'] == 'unit' and sp.get('attrs', {}).get('worker') == worker]
    assert units, f'no unit span attributed to {worker}'
nested = 0
for sp in spans:
    if sp.get('worker') and sp.get('attrs', {}).get('kind') == 'stage':
        chain, cur = set(), sp
        while cur.get('parent_id') in by_id and cur['parent_id'] not in chain:
            chain.add(cur['parent_id'])
            cur = by_id[cur['parent_id']]
            if cur['name'] == 'unit':
                nested += 1
                break
assert nested > 0, 'no worker stage span nests under a coordinator unit span'
print(f"    trace: {len(spans)} spans, {nested} worker stage spans nested under unit spans")
PY
python3 -c 'import json,sys; ev=json.load(open("smoke_bdcoord_trace.json"))["traceEvents"]; assert ev, "empty chrome trace"; print(f"    chrome trace: {len(ev)} events -> smoke_bdcoord_trace.json")'

echo "==> restarting the coordinator (journal replay)"
kill "$CO_PID"
wait "$CO_PID" 2>/dev/null || true
"$WORKDIR/bdcoord" -addr "$CO_ADDR" -data-dir "$WORKDIR/coord" \
  -workers "http://$W1_ADDR,http://$W2_ADDR" &
PIDS+=($!); CO_PID=$!
wait_healthy "$CO" "$CO_PID"
curl -fsS "$CO/v1/jobs/$CO_ID" -o "$WORKDIR/co_status2.json"
STATE2=$(json_field "$WORKDIR/co_status2.json" state)
HASH2=$(json_field "$WORKDIR/co_status2.json" result_hash)
[ "$STATE2" = "done" ] || { echo "replayed job state=$STATE2" >&2; exit 1; }
[ "$HASH2" = "$CO_HASH" ] || { echo "replayed hash $HASH2 != $CO_HASH" >&2; exit 1; }
curl -fsS "$CO/v1/jobs/$CO_ID/result" -o "$WORKDIR/co_result2.json"
cmp "$WORKDIR/co_result.json" "$WORKDIR/co_result2.json"
echo "    journal replayed: job still done with identical result"

echo "==> custom-workload job: preset + inline definition through the coordinator"
# The spec carries the MemThrash preset (materialized into the spec by
# the daemon) plus an inline ad-hoc definition, selecting a mix of
# built-in, preset and custom workloads. The merged result at 2 workers
# must be byte-identical to the single-daemon run, and resubmission must
# be a cache hit with the unchanged job ID.
CJOB='{"workloads":["H-Sort","H-MemThrash","S-MemThrash","H-Probe","S-Probe"],"nodes":2,"instructions":6000,"kmax":3,"presets":["MemThrash"],"custom_workloads":[{"name":"Probe","data":{"paper_bytes":1073741824,"skew":0.3},"mix":{"LoadFrac":0.3,"StoreFrac":0.1,"BranchFrac":0.18,"SeqFrac":0.6},"shuffle_frac":0.1}]}'

curl -fsS -X POST -d "$CJOB" "$CO/v1/jobs" -o "$WORKDIR/cu_submit.json"
CU_ID=$(json_field "$WORKDIR/cu_submit.json" id)
[ -n "$CU_ID" ] || { echo "no job id for custom job" >&2; cat "$WORKDIR/cu_submit.json" >&2; exit 1; }
echo "    custom job $CU_ID"
poll_done "$CO" "$CU_ID" "$WORKDIR/cu_status.json"
CU_HASH=$(json_field "$WORKDIR/cu_status.json" result_hash)
[ -n "$CU_HASH" ] || { echo "custom job has no result_hash" >&2; exit 1; }

curl -fsS -X POST -d "$CJOB" "$SD/v1/jobs" -o "$WORKDIR/cu_sd_submit.json"
CU_SD_ID=$(json_field "$WORKDIR/cu_sd_submit.json" id)
[ "$CU_SD_ID" = "$CU_ID" ] || { echo "custom job IDs differ: $CU_ID vs $CU_SD_ID" >&2; exit 1; }
poll_done "$SD" "$CU_SD_ID" "$WORKDIR/cu_sd_status.json"
CU_SD_HASH=$(json_field "$WORKDIR/cu_sd_status.json" result_hash)
[ "$CU_HASH" = "$CU_SD_HASH" ] || { echo "CUSTOM MERGE NOT DETERMINISTIC: coordinator $CU_HASH vs single-daemon $CU_SD_HASH" >&2; exit 1; }
curl -fsS "$CO/v1/jobs/$CU_ID/result" -o "$WORKDIR/cu_result.json"
curl -fsS "$SD/v1/jobs/$CU_SD_ID/result" -o "$WORKDIR/cu_sd_result.json"
cmp "$WORKDIR/cu_result.json" "$WORKDIR/cu_sd_result.json"
echo "    custom-workload result byte-identical at 2 workers vs 1 daemon ($CU_HASH)"

curl -fsS -X POST -d "$CJOB" "$CO/v1/jobs" -o "$WORKDIR/cu_again.json"
CU_AGAIN_ID=$(json_field "$WORKDIR/cu_again.json" id)
CU_AGAIN_HIT=$(json_field "$WORKDIR/cu_again.json" cache_hit)
[ "$CU_AGAIN_ID" = "$CU_ID" ] || { echo "resubmitted custom job ID drifted: $CU_AGAIN_ID" >&2; exit 1; }
[ "$CU_AGAIN_HIT" = "True" ] || { echo "custom resubmission was not a cache hit" >&2; cat "$WORKDIR/cu_again.json" >&2; exit 1; }
echo "    resubmission: cache hit, unchanged job ID"

echo "==> scraping coordinator /metrics"
# By now the coordinator has dispatched units to both workers and served
# a cache-hit resubmission, so the Prometheus exposition must show both.
curl -fsS "$CO/metrics" -o "$WORKDIR/co_metrics.txt"
python3 - "$WORKDIR/co_metrics.txt" <<'PY'
import re, sys
text = open(sys.argv[1]).read()
def total(name):
    return sum(float(m.group(1)) for m in
               re.finditer(r'^%s(?:\{[^}]*\})? ([0-9.eE+-]+)$' % name, text, re.M))
units = total('bd_worker_units_done_total')
hits = total('bd_cache_hits_total')
assert units > 0, "no bd_worker_units_done_total on /metrics"
assert hits > 0, "no bd_cache_hits_total on /metrics"
for fam in ('bd_http_requests_total', 'bd_stage_duration_seconds',
            'bd_queue_depth', 'bd_fleet_workers'):
    assert fam in text, f"family {fam} missing from /metrics"
print(f"    /metrics: {units:.0f} units done, {hits:.0f} cache hits")
PY
# The workers expose the same endpoint: each executed shard jobs.
curl -fsS "http://$W1_ADDR/metrics" | grep -q '^bd_jobs_completed_total{state="done"} [1-9]' \
  || { echo "worker 1 /metrics shows no completed jobs" >&2; exit 1; }
echo "    worker /metrics shows completed shard jobs"

echo "==> overlapping-suite resubmission: one workload changed (cell cache)"
# The first job populated the coordinator's shared cell cache (under
# -data-dir/cells). A job sharing 3 of its 4 workloads must serve the
# shared workload×node columns from that cache — only the new
# workload's cells are recomputed — visible as a bd_cellcache_hits_total
# increase, and its merged bytes must be identical to a coordinator run
# with the cell cache disabled.
cell_hits() {
  curl -fsS "$1/metrics" | python3 -c 'import sys,re
t = sys.stdin.read()
m = re.search(r"^bd_cellcache_hits_total ([0-9.eE+-]+)$", t, re.M)
print(m.group(1) if m else 0)'
}
PRE_CELL_HITS=$(cell_hits "$CO")
JOB2='{"workloads":["H-Sort","S-Sort","H-Grep","H-WordCount"],"nodes":2,"instructions":6000,"kmax":3}'
curl -fsS -X POST -d "$JOB2" "$CO/v1/jobs" -o "$WORKDIR/j2_submit.json"
J2_ID=$(json_field "$WORKDIR/j2_submit.json" id)
[ -n "$J2_ID" ] || { echo "no job id for changed-workload job" >&2; exit 1; }
poll_done "$CO" "$J2_ID" "$WORKDIR/j2_status.json"
J2_HASH=$(json_field "$WORKDIR/j2_status.json" result_hash)
POST_CELL_HITS=$(cell_hits "$CO")
python3 -c "
pre, post = float('$PRE_CELL_HITS'), float('$POST_CELL_HITS')
assert post > pre, f'no cell-cache hits on overlapping resubmission ({pre} -> {post})'
print(f'    bd_cellcache_hits_total {pre:.0f} -> {post:.0f}')
"

"$WORKDIR/bdcoord" -addr "$C3_ADDR" -data-dir "$WORKDIR/coord3" -cell-cache "" \
  -workers "http://$W1_ADDR,http://$W2_ADDR" &
PIDS+=($!); C3_PID=$!
wait_healthy "$C3" "$C3_PID"
curl -fsS -X POST -d "$JOB2" "$C3/v1/jobs" -o "$WORKDIR/j2_nc_submit.json"
J2_NC_ID=$(json_field "$WORKDIR/j2_nc_submit.json" id)
[ "$J2_NC_ID" = "$J2_ID" ] || { echo "cache-disabled job id $J2_NC_ID != $J2_ID" >&2; exit 1; }
poll_done "$C3" "$J2_NC_ID" "$WORKDIR/j2_nc_status.json"
J2_NC_HASH=$(json_field "$WORKDIR/j2_nc_status.json" result_hash)
[ "$J2_HASH" = "$J2_NC_HASH" ] || { echo "CELL CACHE CHANGED RESULT: cached $J2_HASH vs disabled $J2_NC_HASH" >&2; exit 1; }
curl -fsS "$CO/v1/jobs/$J2_ID/result" -o "$WORKDIR/j2_result.json"
curl -fsS "$C3/v1/jobs/$J2_NC_ID/result" -o "$WORKDIR/j2_nc_result.json"
cmp "$WORKDIR/j2_result.json" "$WORKDIR/j2_nc_result.json"
echo "    cell-cached result byte-identical to cache-disabled run ($J2_HASH)"

echo "==> fleet console: /v1/status + bdtop -once"
# The coordinator has a live 2-worker fleet, finished jobs and a warm
# cell cache, so one /v1/status snapshot must carry all of it: the
# merged fleet view with both workers reachable, non-zero fleet units,
# and per-workload cell-cache hit ratios with at least one warm row.
# The snapshot is kept as a CI artifact next to the chrome trace.
curl -fsS "$CO/v1/status" -o smoke_bdcoord_status.json
python3 - smoke_bdcoord_status.json "http://$W1_ADDR" "http://$W2_ADDR" <<'PY'
import json, sys
st = json.load(open(sys.argv[1]))
assert st['service'] == 'bdcoord', st.get('service')
assert st['jobs']['done'] >= 2, st['jobs']
fleet = st.get('fleet') or []
assert len(fleet) == 2, f'fleet has {len(fleet)} workers'
by_url = {w['url']: w for w in fleet}
units = 0
for url in sys.argv[2:4]:
    w = by_url[url]
    assert not w.get('status_error'), f'{url} unreachable: {w["status_error"]}'
    assert w['status']['service'] == 'bdservd', w['status'].get('service')
    units += w['units_done']
assert units > 0, 'fleet reports zero units done'
cc = st.get('cell_cache') or {}
rows = cc.get('by_workload') or []
assert rows, 'no per-workload cell-cache attribution'
warm = [r for r in rows if r['hit_ratio'] > 0]
assert warm, f'no workload with a non-zero hit ratio: {rows}'
assert st.get('window', {}).get('series'), 'no time-series window in the snapshot'
print(f"    /v1/status: 2 workers reachable, {units} units, "
      f"{len(warm)}/{len(rows)} workloads warm -> smoke_bdcoord_status.json")
PY

"$WORKDIR/bdtop" -once -addr "$CO" > "$WORKDIR/bdtop_frame.txt"
grep -q 'FLEET  2 workers' "$WORKDIR/bdtop_frame.txt" \
  || { echo "bdtop frame missing fleet view" >&2; cat "$WORKDIR/bdtop_frame.txt" >&2; exit 1; }
grep -Eq 'units done [1-9]' "$WORKDIR/bdtop_frame.txt" \
  || { echo "bdtop frame shows no fleet units" >&2; cat "$WORKDIR/bdtop_frame.txt" >&2; exit 1; }
grep -Eq 'cell cache .* ratio 0\.[0-9]*[1-9]|cell cache .* ratio 1\.00' "$WORKDIR/bdtop_frame.txt" \
  || { echo "bdtop frame shows zero cell-cache hit ratio" >&2; cat "$WORKDIR/bdtop_frame.txt" >&2; exit 1; }
sed 's/^/    | /' "$WORKDIR/bdtop_frame.txt" | head -12
echo "    bdtop -once rendered the merged fleet view"

echo "==> heterogeneous-speed scenario: one worker throttled 3s/cell"
# Fresh workers and coordinator (fresh data dirs: no cache replay). The
# job grid has 8 workload×node cells; under the old *static* planner the
# throttled worker would own half of them, so any static schedule costs
# at least 4 × 3s = 12s of injected delay alone. Work stealing must let
# the fast worker drain the tail and finish well under that bound.
CELL_DELAY=3
STATIC_BOUND=12
"$WORKDIR/bdservd" -addr "$W3_ADDR" -data-dir "$WORKDIR/w3" -characterize-only &
PIDS+=($!); W3_PID=$!
"$WORKDIR/bdservd" -addr "$W4_ADDR" -data-dir "$WORKDIR/w4" -characterize-only \
  -throttle-cell "${CELL_DELAY}s" &
PIDS+=($!); W4_PID=$!
wait_healthy "http://$W3_ADDR" "$W3_PID"
wait_healthy "http://$W4_ADDR" "$W4_PID"
"$WORKDIR/bdcoord" -addr "$C2_ADDR" -data-dir "$WORKDIR/coord2" \
  -workers "http://$W3_ADDR,http://$W4_ADDR" -probe-interval 1s &
PIDS+=($!); C2_PID=$!
wait_healthy "$C2" "$C2_PID"

T0=$(python3 -c 'import time; print(time.time())')
curl -fsS -X POST -d "$JOB" "$C2/v1/jobs" -o "$WORKDIR/c2_submit.json"
C2_ID=$(json_field "$WORKDIR/c2_submit.json" id)
[ "$C2_ID" = "$CO_ID" ] || { echo "heterogeneous job id $C2_ID != $CO_ID" >&2; exit 1; }
poll_done "$C2" "$C2_ID" "$WORKDIR/c2_status.json"
T1=$(python3 -c 'import time; print(time.time())')
ELAPSED=$(python3 -c "print($T1 - $T0)")

C2_HASH=$(json_field "$WORKDIR/c2_status.json" result_hash)
[ "$C2_HASH" = "$CO_HASH" ] || { echo "heterogeneous-fleet hash $C2_HASH != $CO_HASH" >&2; exit 1; }
echo "    hash identical under a throttled worker ($C2_HASH)"
python3 -c "
import sys
elapsed = $ELAPSED
bound = $STATIC_BOUND
print(f'    wall-clock {elapsed:.1f}s vs static-planner worst case >= {bound}s')
sys.exit(0 if elapsed < bound else 1)
" || { echo "work stealing did not beat the static-planner worst case" >&2; exit 1; }

echo "==> checking /v1/workers health + unit distribution"
curl -fsS "$C2/v1/workers" -o "$WORKDIR/c2_workers.json"
python3 - "$WORKDIR/c2_workers.json" "http://$W3_ADDR" "http://$W4_ADDR" <<'PY'
import json, sys
ws = {w["url"]: w for w in json.load(open(sys.argv[1]))}
fast, slow = ws[sys.argv[2]], ws[sys.argv[3]]
assert fast["breaker"] == "closed" and slow["breaker"] == "closed", ws
assert fast["units_done"] > slow["units_done"] > 0 or slow["units_done"] == 0, ws
assert fast["units_done"] + slow["units_done"] >= 8, ws
assert fast["probes"] > 0, ws
print(f"    fast worker ran {fast['units_done']} units, throttled worker {slow['units_done']}; breakers closed")
PY

echo "==> bdcoord smoke OK (job $CO_ID, merged hash $CO_HASH)"
