#!/usr/bin/env bash
# Smoke test for elastic fleet membership + coordinator crash recovery,
# run by CI and usable locally:
#
#  1. Boot a coordinator with NO -workers seed and one throttled
#     characterize-only worker that self-registers (-register) under a
#     5s heartbeat lease; assert the lease (source, ttl, remaining)
#     shows on GET /v1/workers.
#  2. Submit a job, wait for the first per-unit "unit_done" record to
#     land in the coordinator's journal, then SIGKILL the coordinator
#     mid-job — the crash model, no drain, no terminal record.
#  3. Register a second worker (fleet churn during recovery) and restart
#     the coordinator over the same data dir: it must re-adopt the job
#     from the journal and finish it.
#  4. Assert the recovered merged result is byte-identical to a
#     single-daemon run of the same spec.
#  5. SIGTERM the second worker and assert its graceful shutdown
#     releases the lease (it disappears from /v1/workers immediately,
#     not by TTL expiry).
set -euo pipefail

CO_ADDR="127.0.0.1:8370"
W1_ADDR="127.0.0.1:8371"
W2_ADDR="127.0.0.1:8372"
SD_ADDR="127.0.0.1:8373"
CO="http://$CO_ADDR"
W1="http://$W1_ADDR"
W2="http://$W2_ADDR"
SD="http://$SD_ADDR"
WORKDIR="$(mktemp -d)"
PIDS=()
# ${PIDS[@]:-} so the trap survives an empty array under set -u (bash<4.4).
trap 'kill "${PIDS[@]:-}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building bdservd + bdcoord"
go build -o "$WORKDIR/bdservd" ./cmd/bdservd
go build -o "$WORKDIR/bdcoord" ./cmd/bdcoord

wait_healthy() { # wait_healthy <base-url> <pid>
  for i in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "daemon at $1 died" >&2; return 1; fi
    sleep 0.2
  done
  echo "daemon at $1 never became healthy" >&2
  return 1
}

json_field() { # json_field <file> <field> — bools print as True/False
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get(sys.argv[2], ""))' "$1" "$2"
}

poll_done() { # poll_done <base-url> <job-id> <status-file>
  local state=""
  for i in $(seq 1 300); do
    curl -fsS "$1/v1/jobs/$2" -o "$3"
    state=$(json_field "$3" state)
    case "$state" in
      done) return 0 ;;
      failed|canceled) echo "job ended $state:" >&2; cat "$3" >&2; return 1 ;;
    esac
    sleep 1
  done
  echo "job stuck in state '$state'" >&2
  return 1
}

registered_count() { # registered workers currently on the fleet
  curl -fsS "$CO/v1/workers" | python3 -c \
    'import json,sys; print(sum(1 for w in json.load(sys.stdin) if w.get("source")=="registered"))'
}

echo "==> starting a seedless coordinator and a self-registering throttled worker"
"$WORKDIR/bdcoord" -addr "$CO_ADDR" -data-dir "$WORKDIR/coord" &
PIDS+=($!); CO_PID=$!
"$WORKDIR/bdservd" -addr "$W1_ADDR" -data-dir "$WORKDIR/w1" -characterize-only \
  -throttle-cell 1s -register "$CO" -advertise "$W1" -lease-ttl 5s &
PIDS+=($!); W1_PID=$!
wait_healthy "$CO" "$CO_PID"
wait_healthy "$W1" "$W1_PID"

echo "==> waiting for the worker's lease on GET /v1/workers"
COUNT=0
for i in $(seq 1 50); do
  COUNT=$(registered_count)
  [ "$COUNT" -ge 1 ] && break
  sleep 0.2
done
[ "$COUNT" -ge 1 ] || { echo "worker never registered with the coordinator" >&2; exit 1; }
curl -fsS "$CO/v1/workers" -o "$WORKDIR/workers.json"
python3 - "$WORKDIR/workers.json" "$W1" <<'PY'
import json, sys
ws = {w["url"]: w for w in json.load(open(sys.argv[1]))}
w = ws[sys.argv[2]]
assert w["source"] == "registered", w
assert w["ttl_seconds"] == 5, w
assert w.get("last_heartbeat"), w
assert 0 < w["ttl_remaining_seconds"] <= 5, w
print(f"    lease visible: ttl {w['ttl_seconds']}s, remaining {w['ttl_remaining_seconds']:.1f}s")
PY

JOB='{"workloads":["H-Sort","S-Sort","H-Grep","S-Grep"],"nodes":2,"instructions":6000,"kmax":3}'
JOURNAL="$WORKDIR/coord/journal.ndjson"

echo "==> submitting the job, then SIGKILL-ing the coordinator after the first unit_done"
curl -fsS -X POST -d "$JOB" "$CO/v1/jobs" -o "$WORKDIR/submit.json"
CO_ID=$(json_field "$WORKDIR/submit.json" id)
[ -n "$CO_ID" ] || { echo "no job id from coordinator" >&2; cat "$WORKDIR/submit.json" >&2; exit 1; }
echo "    job $CO_ID"
N1=0
for i in $(seq 1 300); do
  N1=$(grep -c '"type":"unit_done"' "$JOURNAL" 2>/dev/null || true)
  [ "${N1:-0}" -ge 1 ] && break
  sleep 0.2
done
[ "${N1:-0}" -ge 1 ] || { echo "no unit_done journaled within 60s" >&2; exit 1; }
kill -9 "$CO_PID"
wait "$CO_PID" 2>/dev/null || true
N1=$(grep -c '"type":"unit_done"' "$JOURNAL")
grep -q '"type":"done".*"id":"'"$CO_ID"'"\|"id":"'"$CO_ID"'".*"type":"done"' "$JOURNAL" \
  && { echo "job already terminal before the kill — crash landed too late" >&2; exit 1; }
echo "    coordinator killed with $N1 unit(s) journaled done and the job non-terminal"

echo "==> second worker joins; coordinator restarts over the same journal + unit store"
"$WORKDIR/bdservd" -addr "$W2_ADDR" -data-dir "$WORKDIR/w2" -characterize-only \
  -register "$CO" -advertise "$W2" -lease-ttl 5s &
PIDS+=($!); W2_PID=$!
wait_healthy "$W2" "$W2_PID"
"$WORKDIR/bdcoord" -addr "$CO_ADDR" -data-dir "$WORKDIR/coord" &
PIDS+=($!); CO_PID=$!
wait_healthy "$CO" "$CO_PID"

curl -fsS "$CO/v1/jobs/$CO_ID" -o "$WORKDIR/readopt.json" \
  || { echo "re-adopted job missing after restart" >&2; exit 1; }
READOPT_STATE=$(json_field "$WORKDIR/readopt.json" state)
echo "    job re-adopted in state '$READOPT_STATE'"
poll_done "$CO" "$CO_ID" "$WORKDIR/recovered.json"
RC_HASH=$(json_field "$WORKDIR/recovered.json" result_hash)
[ -n "$RC_HASH" ] || { echo "recovered job has no result_hash" >&2; exit 1; }
echo "    recovered merged hash $RC_HASH"

echo "==> single-daemon golden comparison"
"$WORKDIR/bdservd" -addr "$SD_ADDR" -data-dir "$WORKDIR/single" &
PIDS+=($!); SD_PID=$!
wait_healthy "$SD" "$SD_PID"
curl -fsS -X POST -d "$JOB" "$SD/v1/jobs" -o "$WORKDIR/sd_submit.json"
SD_ID=$(json_field "$WORKDIR/sd_submit.json" id)
[ "$SD_ID" = "$CO_ID" ] || { echo "job IDs differ: $CO_ID vs $SD_ID" >&2; exit 1; }
poll_done "$SD" "$SD_ID" "$WORKDIR/sd_status.json"
SD_HASH=$(json_field "$WORKDIR/sd_status.json" result_hash)
[ "$RC_HASH" = "$SD_HASH" ] || { echo "RECOVERY NOT DETERMINISTIC: recovered $RC_HASH vs single-daemon $SD_HASH" >&2; exit 1; }
curl -fsS "$CO/v1/jobs/$CO_ID/result" -o "$WORKDIR/rc_result.json"
curl -fsS "$SD/v1/jobs/$SD_ID/result" -o "$WORKDIR/sd_result.json"
cmp "$WORKDIR/rc_result.json" "$WORKDIR/sd_result.json"
echo "    recovered result byte-identical to the single-daemon run"

echo "==> scraping /metrics on the recovered coordinator"
# The restart re-dispatched the job's remaining units, and a resubmission
# of the finished spec counts as a cache hit — both must show on the
# Prometheus exposition.
curl -fsS -X POST -d "$JOB" "$CO/v1/jobs" >/dev/null
curl -fsS "$CO/metrics" -o "$WORKDIR/co_metrics.txt"
python3 - "$WORKDIR/co_metrics.txt" <<'PY'
import re, sys
text = open(sys.argv[1]).read()
def total(name):
    return sum(float(m.group(1)) for m in
               re.finditer(r'^%s(?:\{[^}]*\})? ([0-9.eE+-]+)$' % name, text, re.M))
units = total('bd_worker_units_done_total')
hits = total('bd_cache_hits_total')
assert units > 0, "no bd_worker_units_done_total on recovered /metrics"
assert hits > 0, "no bd_cache_hits_total on recovered /metrics"
assert total('bd_lease_events_total') > 0, "no lease events on /metrics"
print(f"    /metrics: {units:.0f} units done after recovery, {hits:.0f} cache hits")
PY

echo "==> graceful worker shutdown releases its lease immediately"
BEFORE=$(registered_count)
kill -TERM "$W2_PID"
wait "$W2_PID" 2>/dev/null || true
AFTER=$(registered_count)
[ "$AFTER" -lt "$BEFORE" ] || { echo "lease not released on SIGTERM ($BEFORE -> $AFTER registered)" >&2; exit 1; }
curl -fsS "$CO/v1/workers" -o "$WORKDIR/workers_after.json"
python3 - "$WORKDIR/workers_after.json" "$W2" <<'PY'
import json, sys
ws = [w["url"] for w in json.load(open(sys.argv[1]))]
assert sys.argv[2] not in ws, ws
print("    lease released: worker gone from /v1/workers without waiting for TTL")
PY

echo "==> recovery smoke OK (job $CO_ID, recovered hash $RC_HASH)"
