package repro

import (
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/benchio"
	"repro/internal/service"
	"repro/internal/shard"
)

// The distributed-mode benchmarks time the bdcoord work-stealing
// coordinator over in-process bdservd workers at the CI-scale grid
// (the same job scripts/smoke_bdcoord.sh submits): one worker, two
// workers, and two workers with one throttled — the heterogeneous-fleet
// case the dynamic dispatcher exists for. When all three have run, the
// rows are merged into BENCH_pipeline.json (alongside the single-process
// rows) with their shared merged result hash, asserting the
// work-stealing merge stayed deterministic across fleet shapes:
//
//	go test -bench 'BenchmarkDistributed' -benchtime 3x -run '^$'
//
// Worker daemons run with Parallelism 1, so on a multi-core host the
// two-worker rows also measure real horizontal speedup; on a 1-core CI
// container they mostly measure coordination overhead (and, for the
// throttled row, how well stealing hides a slow worker).

const distBenchScale = "4 workloads, 2 nodes, 6000 instr/core (CI-scale), workers at parallelism 1"

// distCellDelay throttles the slow worker in the one-slow row: large
// against the ~tens-of-ms CI-scale cell, small against total runtime.
const distCellDelay = 300 * time.Millisecond

var (
	distMu      sync.Mutex
	distResults = map[string]benchio.DistVariant{}
)

func distSpec(b *testing.B) service.JobSpec {
	kmax := 3
	nodes, instr := 2, 6000
	req := service.JobRequest{
		Workloads:    []string{"H-Sort", "S-Sort", "H-Grep", "S-Grep"},
		Nodes:        &nodes,
		Instructions: &instr,
		KMax:         &kmax,
	}
	spec, err := req.ToSpec()
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// startBenchWorker boots one in-process bdservd on a loopback port.
func startBenchWorker(b *testing.B, throttle time.Duration) (url string, shutdown func()) {
	mgr, err := service.New(service.Config{Workers: 2, Parallelism: 1, CellDelay: throttle})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		b.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.Close()
		mgr.Close()
	}
}

// runDistBench times one fleet shape end to end. Every iteration builds
// a fresh fleet and coordinator (no result cache survives), so each op
// is a full cold characterization + merge.
func runDistBench(b *testing.B, name string, workers, throttled int) {
	spec := distSpec(b)
	var hash string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var urls []string
		var downs []func()
		for w := 0; w < workers; w++ {
			delay := time.Duration(0)
			if w >= workers-throttled {
				delay = distCellDelay
			}
			u, down := startBenchWorker(b, delay)
			urls = append(urls, u)
			downs = append(downs, down)
		}
		exec, err := shard.New(shard.Config{Workers: urls, ProbeInterval: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		coord, err := service.New(service.Config{Execute: exec.Execute})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		st, err := coord.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		for {
			cur, ok := coord.Get(st.ID)
			if !ok {
				b.Fatal("job disappeared")
			}
			if cur.State == service.StateDone {
				hash = cur.ResultHash
				break
			}
			if cur.State == service.StateFailed || cur.State == service.StateCanceled {
				b.Fatalf("bench job finished %s: %s", cur.State, cur.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}

		b.StopTimer()
		coord.Close()
		exec.Close()
		for _, down := range downs {
			down()
		}
		b.StartTimer()
	}
	b.StopTimer()

	distMu.Lock()
	defer distMu.Unlock()
	distResults[name] = benchio.DistVariant{
		SecondsPerOp:     b.Elapsed().Seconds() / float64(b.N),
		Iterations:       b.N,
		Workers:          workers,
		ThrottledWorkers: throttled,
		CellDelayMS:      int(distCellDelay.Milliseconds()) * min(throttled, 1),
		ResultHash:       hash,
	}
	if len(distResults) == 3 {
		if err := benchio.WriteDistributed(distBenchScale, distResults); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributed_1Worker(b *testing.B) {
	runDistBench(b, "1_worker", 1, 0)
}

func BenchmarkDistributed_2Workers(b *testing.B) {
	runDistBench(b, "2_workers", 2, 0)
}

func BenchmarkDistributed_2WorkersOneSlow(b *testing.B) {
	runDistBench(b, "2_workers_one_slow", 2, 1)
}
